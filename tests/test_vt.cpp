// Tests for the virtual-time threading substrate (common/vt.hpp).
#include "common/vt.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <vector>

#include "common/queue.hpp"

namespace gpuvm::vt {
namespace {

TEST(VtDomain, StartsAtZero) {
  Domain dom;
  EXPECT_EQ(dom.now(), kTimeZero);
}

TEST(VtDomain, SingleThreadSleepAdvancesExactly) {
  Domain dom;
  AttachGuard guard(dom);
  dom.sleep_for(from_millis(5));
  EXPECT_EQ(dom.now(), from_millis(5));
  dom.sleep_for(from_micros(250));
  EXPECT_EQ(dom.now(), from_millis(5) + from_micros(250));
}

TEST(VtDomain, SleepZeroOrNegativeIsNoop) {
  Domain dom;
  AttachGuard guard(dom);
  dom.sleep_for(Duration::zero());
  dom.sleep_for(Duration{-100});
  EXPECT_EQ(dom.now(), kTimeZero);
}

TEST(VtDomain, SleepUntilPastIsNoop) {
  Domain dom;
  AttachGuard guard(dom);
  dom.sleep_for(from_millis(2));
  dom.sleep_until(from_millis(1));
  EXPECT_EQ(dom.now(), from_millis(2));
}

TEST(VtDomain, ParallelSleepsOverlapInVirtualTime) {
  Domain dom;
  std::atomic<i64> max_end_ns{0};
  {
    std::vector<Thread> threads;
    HoldGuard hold(dom);
    for (int i = 0; i < 8; ++i) {
      threads.emplace_back(dom, [&dom, &max_end_ns] {
        dom.sleep_for(from_millis(10));
        i64 end = dom.now().count();
        i64 prev = max_end_ns.load();
        while (prev < end && !max_end_ns.compare_exchange_weak(prev, end)) {
        }
      });
    }
  }
  // Eight concurrent 10ms sleeps take 10ms of virtual time, not 80ms.
  EXPECT_EQ(max_end_ns.load(), from_millis(10).count());
}

TEST(VtDomain, SequentialDependentSleepsAccumulate) {
  Domain dom;
  VtQueue<int> q(dom);
  TimePoint consumer_end{};
  {
    dom.hold();
    Thread producer(dom, [&] {
      dom.sleep_for(from_millis(3));
      q.push(1);
    });
    Thread consumer(dom, [&] {
      (void)q.pop();
      dom.sleep_for(from_millis(4));
      consumer_end = dom.now();
    });
    dom.unhold();
  }
  EXPECT_EQ(consumer_end, from_millis(7));
}

TEST(VtDomain, IdleWaiterDoesNotStallClock) {
  Domain dom;
  VtQueue<int> q(dom);
  TimePoint producer_end{};
  {
    dom.hold();
    Thread waiter(dom, [&] { (void)q.pop(); });
    Thread producer(dom, [&] {
      dom.sleep_for(from_seconds(1));
      producer_end = dom.now();
      q.push(42);
    });
    dom.unhold();
  }
  // The idle pop() must not prevent the producer's sleep from advancing.
  EXPECT_EQ(producer_end, from_seconds(1));
}

TEST(VtDomain, ManySleepersWakeInDeadlineOrder) {
  Domain dom;
  std::mutex mu;
  std::vector<int> order;
  {
    std::vector<Thread> threads;
    HoldGuard hold(dom);
    for (int i = 7; i >= 0; --i) {
      threads.emplace_back(dom, [&, i] {
        dom.sleep_for(from_millis(i + 1));
        std::scoped_lock lock(mu);
        order.push_back(i);
      });
    }
  }
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(VtDomain, NestedProducerConsumerPipeline) {
  // Three-stage pipeline; end-to-end virtual latency is the sum of stage
  // delays for one item because stages overlap across items.
  Domain dom;
  VtQueue<int> q1(dom);
  VtQueue<int> q2(dom);
  TimePoint last_out{};
  constexpr int kItems = 16;
  {
    dom.hold();
    Thread stage1(dom, [&] {
      for (int i = 0; i < kItems; ++i) {
        dom.sleep_for(from_millis(1));
        q1.push(i);
      }
      q1.close();
    });
    Thread stage2(dom, [&] {
      while (auto v = q1.pop()) {
        dom.sleep_for(from_millis(1));
        q2.push(*v);
      }
      q2.close();
    });
    Thread stage3(dom, [&] {
      while (auto v = q2.pop()) {
        dom.sleep_for(from_millis(1));
        last_out = dom.now();
      }
    });
    dom.unhold();
  }
  // Pipeline throughput is bounded by the slowest stage: 16 items, 1ms
  // bottleneck, 2ms fill latency.
  EXPECT_EQ(last_out, from_millis(kItems + 2));
}

TEST(VtDomain, WaitForTimesOutInVirtualTime) {
  Domain dom;
  std::mutex mu;
  ConditionVariable cv(dom);
  bool flag = false;
  TimePoint waited_until{};
  {
    Thread waiter(dom, [&] {
      std::unique_lock lk(mu);
      const bool got = cv.wait_for(lk, from_millis(10), [&] { return flag; });
      EXPECT_FALSE(got);
      waited_until = dom.now();
    });
  }
  EXPECT_GE(waited_until, from_millis(10));
  // Polling quantization may overshoot slightly, but never by more than a
  // quantum.
  EXPECT_LE(waited_until, from_millis(11));
}

TEST(VtDomain, WaitForSucceedsWhenPredicateTurnsTrue) {
  Domain dom;
  std::mutex mu;
  ConditionVariable cv(dom);
  bool flag = false;
  bool got = false;
  {
    dom.hold();
    Thread waiter(dom, [&] {
      std::unique_lock lk(mu);
      got = cv.wait_for(lk, from_seconds(5), [&] { return flag; });
    });
    Thread setter(dom, [&] {
      dom.sleep_for(from_millis(20));
      std::scoped_lock lk(mu);
      flag = true;
      cv.notify_all();
    });
    dom.unhold();
  }
  EXPECT_TRUE(got);
}

TEST(VtDomain, StressManyThreadsRandomSleeps) {
  Domain dom;
  std::atomic<int> completed{0};
  {
    std::vector<Thread> threads;
    HoldGuard hold(dom);
    for (int t = 0; t < 16; ++t) {
      threads.emplace_back(dom, [&dom, &completed, t] {
        for (int i = 0; i < 50; ++i) {
          dom.sleep_for(from_micros((t * 37 + i * 13) % 200 + 1));
        }
        completed.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(completed.load(), 16);
  EXPECT_GT(dom.now(), kTimeZero);
}

TEST(VtDomain, ScaledRealModeSleepsApproximately) {
  Domain dom(Mode::ScaledReal, /*real_scale=*/1e-6);  // 1s virtual -> 1us real
  AttachGuard guard(dom);
  dom.sleep_for(from_seconds(1));
  EXPECT_GE(dom.now(), from_seconds(1));
}

TEST(VtQueue, CloseWakesConsumers) {
  Domain dom;
  VtQueue<int> q(dom);
  std::atomic<int> nulls{0};
  {
    dom.hold();
    std::vector<Thread> consumers;
    for (int i = 0; i < 4; ++i) {
      consumers.emplace_back(dom, [&] {
        if (!q.pop().has_value()) nulls.fetch_add(1);
      });
    }
    Thread closer(dom, [&] {
      dom.sleep_for(from_millis(1));
      q.close();
    });
    dom.unhold();
  }
  EXPECT_EQ(nulls.load(), 4);
}

TEST(VtQueue, DrainsRemainingItemsAfterClose) {
  Domain dom;
  AttachGuard guard(dom);
  VtQueue<int> q(dom);
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(VtQueue, FifoOrderUnderSingleConsumer) {
  Domain dom;
  VtQueue<int> q(dom);
  std::vector<int> seen;
  {
    Thread consumer(dom, [&] {
      while (auto v = q.pop()) seen.push_back(*v);
    });
    Thread producer(dom, [&] {
      for (int i = 0; i < 100; ++i) q.push(i);
      q.close();
    });
  }
  ASSERT_EQ(seen.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(seen[static_cast<size_t>(i)], i);
}

TEST(VtDomain, HoldBlocksAdvanceUntilReleased) {
  Domain dom;
  TimePoint sleeper_end{};
  dom.hold();
  Thread sleeper(dom, [&] {
    dom.sleep_for(from_millis(1));
    sleeper_end = dom.now();
  });
  // While held, the clock cannot advance; give the sleeper a moment to
  // park (real time, not virtual).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(dom.now(), kTimeZero);
  dom.unhold();
  sleeper.join();
  EXPECT_EQ(sleeper_end, from_millis(1));
}

TEST(VtDomain, NestedHoldsRequireAllReleases) {
  Domain dom;
  dom.hold();
  dom.hold();
  Thread sleeper(dom, [&] { dom.sleep_for(from_millis(1)); });
  dom.unhold();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(dom.now(), kTimeZero);  // still one hold outstanding
  dom.unhold();
  sleeper.join();
  EXPECT_EQ(dom.now(), from_millis(1));
}

TEST(VtDomain, IdleGuardLetsClockAdvancePastExternalBlocking) {
  Domain dom;
  std::promise<void> external;
  auto fut = external.get_future();
  TimePoint worker_end{};
  {
    dom.hold();
    Thread blocker(dom, [&] {
      // Blocking on a non-vt primitive without IdleGuard would freeze the
      // clock for everyone.
      IdleGuard idle;
      fut.wait();
    });
    Thread worker(dom, [&] {
      dom.sleep_for(from_millis(3));
      worker_end = dom.now();
      external.set_value();
    });
    dom.unhold();
  }
  EXPECT_EQ(worker_end, from_millis(3));
}

TEST(VtDomain, CurrentReflectsAttachment) {
  Domain dom;
  EXPECT_EQ(Domain::current(), nullptr);
  {
    AttachGuard guard(dom);
    EXPECT_EQ(Domain::current(), &dom);
  }
  EXPECT_EQ(Domain::current(), nullptr);
}

TEST(VtDomain, ScaledRealModeMatchesVirtualOrdering) {
  // The same pipeline in ScaledReal mode produces the same event ordering
  // (a sanity cross-check that the virtual clock does not distort shapes).
  for (Mode mode : {Mode::Virtual, Mode::ScaledReal}) {
    Domain dom(mode, /*real_scale=*/1e-5);
    VtQueue<int> q(dom);
    std::vector<int> seen;
    {
      dom.hold();
      Thread consumer(dom, [&] {
        while (auto v = q.pop()) seen.push_back(*v);
      });
      Thread producer(dom, [&] {
        for (int i = 0; i < 10; ++i) {
          dom.sleep_for(from_millis(1));
          q.push(i);
        }
        q.close();
      });
      dom.unhold();
    }
    ASSERT_EQ(seen.size(), 10u) << (mode == Mode::Virtual ? "virtual" : "scaled-real");
    for (int i = 0; i < 10; ++i) EXPECT_EQ(seen[static_cast<size_t>(i)], i);
  }
}

}  // namespace
}  // namespace gpuvm::vt
