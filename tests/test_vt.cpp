// Tests for the virtual-time threading substrate (common/vt.hpp): the
// quiescence clock under both sleeper-queue engines, the calendar queue
// itself, the cancellable Alarm, and the ScaledReal cross-check.
#include "common/vt.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <vector>

#include "common/calendar_queue.hpp"
#include "common/queue.hpp"
#include "common/rng.hpp"

namespace gpuvm::vt {
namespace {

TEST(VtDomain, StartsAtZero) {
  Domain dom;
  EXPECT_EQ(dom.now(), kTimeZero);
}

TEST(VtDomain, SingleThreadSleepAdvancesExactly) {
  Domain dom;
  AttachGuard guard(dom);
  dom.sleep_for(from_millis(5));
  EXPECT_EQ(dom.now(), from_millis(5));
  dom.sleep_for(from_micros(250));
  EXPECT_EQ(dom.now(), from_millis(5) + from_micros(250));
}

TEST(VtDomain, SleepZeroOrNegativeIsNoop) {
  Domain dom;
  AttachGuard guard(dom);
  dom.sleep_for(Duration::zero());
  dom.sleep_for(Duration{-100});
  EXPECT_EQ(dom.now(), kTimeZero);
}

TEST(VtDomain, SleepUntilPastIsNoop) {
  Domain dom;
  AttachGuard guard(dom);
  dom.sleep_for(from_millis(2));
  dom.sleep_until(from_millis(1));
  EXPECT_EQ(dom.now(), from_millis(2));
}

TEST(VtDomain, ParallelSleepsOverlapInVirtualTime) {
  Domain dom;
  std::atomic<i64> max_end_ns{0};
  {
    std::vector<Thread> threads;
    HoldGuard hold(dom);
    for (int i = 0; i < 8; ++i) {
      threads.emplace_back(dom, [&dom, &max_end_ns] {
        dom.sleep_for(from_millis(10));
        i64 end = dom.now().count();
        i64 prev = max_end_ns.load();
        while (prev < end && !max_end_ns.compare_exchange_weak(prev, end)) {
        }
      });
    }
  }
  // Eight concurrent 10ms sleeps take 10ms of virtual time, not 80ms.
  EXPECT_EQ(max_end_ns.load(), from_millis(10).count());
}

TEST(VtDomain, SequentialDependentSleepsAccumulate) {
  Domain dom;
  VtQueue<int> q(dom);
  TimePoint consumer_end{};
  {
    dom.hold();
    Thread producer(dom, [&] {
      dom.sleep_for(from_millis(3));
      q.push(1);
    });
    Thread consumer(dom, [&] {
      (void)q.pop();
      dom.sleep_for(from_millis(4));
      consumer_end = dom.now();
    });
    dom.unhold();
  }
  EXPECT_EQ(consumer_end, from_millis(7));
}

TEST(VtDomain, IdleWaiterDoesNotStallClock) {
  Domain dom;
  VtQueue<int> q(dom);
  TimePoint producer_end{};
  {
    dom.hold();
    Thread waiter(dom, [&] { (void)q.pop(); });
    Thread producer(dom, [&] {
      dom.sleep_for(from_seconds(1));
      producer_end = dom.now();
      q.push(42);
    });
    dom.unhold();
  }
  // The idle pop() must not prevent the producer's sleep from advancing.
  EXPECT_EQ(producer_end, from_seconds(1));
}

TEST(VtDomain, ManySleepersWakeInDeadlineOrder) {
  Domain dom;
  std::mutex mu;
  std::vector<int> order;
  {
    std::vector<Thread> threads;
    HoldGuard hold(dom);
    for (int i = 7; i >= 0; --i) {
      threads.emplace_back(dom, [&, i] {
        dom.sleep_for(from_millis(i + 1));
        std::scoped_lock lock(mu);
        order.push_back(i);
      });
    }
  }
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(VtDomain, NestedProducerConsumerPipeline) {
  // Three-stage pipeline; end-to-end virtual latency is the sum of stage
  // delays for one item because stages overlap across items.
  Domain dom;
  VtQueue<int> q1(dom);
  VtQueue<int> q2(dom);
  TimePoint last_out{};
  constexpr int kItems = 16;
  {
    dom.hold();
    Thread stage1(dom, [&] {
      for (int i = 0; i < kItems; ++i) {
        dom.sleep_for(from_millis(1));
        q1.push(i);
      }
      q1.close();
    });
    Thread stage2(dom, [&] {
      while (auto v = q1.pop()) {
        dom.sleep_for(from_millis(1));
        q2.push(*v);
      }
      q2.close();
    });
    Thread stage3(dom, [&] {
      while (auto v = q2.pop()) {
        dom.sleep_for(from_millis(1));
        last_out = dom.now();
      }
    });
    dom.unhold();
  }
  // Pipeline throughput is bounded by the slowest stage: 16 items, 1ms
  // bottleneck, 2ms fill latency.
  EXPECT_EQ(last_out, from_millis(kItems + 2));
}

TEST(VtDomain, WaitForTimesOutInVirtualTime) {
  Domain dom;
  std::mutex mu;
  ConditionVariable cv(dom);
  bool flag = false;
  TimePoint waited_until{};
  {
    Thread waiter(dom, [&] {
      std::unique_lock lk(mu);
      const bool got = cv.wait_for(lk, from_millis(10), [&] { return flag; });
      EXPECT_FALSE(got);
      waited_until = dom.now();
    });
  }
  EXPECT_GE(waited_until, from_millis(10));
  // Polling quantization may overshoot slightly, but never by more than a
  // quantum.
  EXPECT_LE(waited_until, from_millis(11));
}

TEST(VtDomain, WaitForSucceedsWhenPredicateTurnsTrue) {
  Domain dom;
  std::mutex mu;
  ConditionVariable cv(dom);
  bool flag = false;
  bool got = false;
  {
    dom.hold();
    Thread waiter(dom, [&] {
      std::unique_lock lk(mu);
      got = cv.wait_for(lk, from_seconds(5), [&] { return flag; });
    });
    Thread setter(dom, [&] {
      dom.sleep_for(from_millis(20));
      std::scoped_lock lk(mu);
      flag = true;
      cv.notify_all();
    });
    dom.unhold();
  }
  EXPECT_TRUE(got);
}

TEST(VtDomain, StressManyThreadsRandomSleeps) {
  Domain dom;
  std::atomic<int> completed{0};
  {
    std::vector<Thread> threads;
    HoldGuard hold(dom);
    for (int t = 0; t < 16; ++t) {
      threads.emplace_back(dom, [&dom, &completed, t] {
        for (int i = 0; i < 50; ++i) {
          dom.sleep_for(from_micros((t * 37 + i * 13) % 200 + 1));
        }
        completed.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(completed.load(), 16);
  EXPECT_GT(dom.now(), kTimeZero);
}

TEST(VtDomain, ScaledRealModeSleepsApproximately) {
  Domain dom(Mode::ScaledReal, /*real_scale=*/1e-6);  // 1s virtual -> 1us real
  AttachGuard guard(dom);
  dom.sleep_for(from_seconds(1));
  EXPECT_GE(dom.now(), from_seconds(1));
}

TEST(VtQueue, CloseWakesConsumers) {
  Domain dom;
  VtQueue<int> q(dom);
  std::atomic<int> nulls{0};
  {
    dom.hold();
    std::vector<Thread> consumers;
    for (int i = 0; i < 4; ++i) {
      consumers.emplace_back(dom, [&] {
        if (!q.pop().has_value()) nulls.fetch_add(1);
      });
    }
    Thread closer(dom, [&] {
      dom.sleep_for(from_millis(1));
      q.close();
    });
    dom.unhold();
  }
  EXPECT_EQ(nulls.load(), 4);
}

TEST(VtQueue, DrainsRemainingItemsAfterClose) {
  Domain dom;
  AttachGuard guard(dom);
  VtQueue<int> q(dom);
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(VtQueue, FifoOrderUnderSingleConsumer) {
  Domain dom;
  VtQueue<int> q(dom);
  std::vector<int> seen;
  {
    Thread consumer(dom, [&] {
      while (auto v = q.pop()) seen.push_back(*v);
    });
    Thread producer(dom, [&] {
      for (int i = 0; i < 100; ++i) q.push(i);
      q.close();
    });
  }
  ASSERT_EQ(seen.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(seen[static_cast<size_t>(i)], i);
}

TEST(VtDomain, HoldBlocksAdvanceUntilReleased) {
  Domain dom;
  TimePoint sleeper_end{};
  dom.hold();
  Thread sleeper(dom, [&] {
    dom.sleep_for(from_millis(1));
    sleeper_end = dom.now();
  });
  // While held, the clock cannot advance; give the sleeper a moment to
  // park (real time, not virtual).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(dom.now(), kTimeZero);
  dom.unhold();
  sleeper.join();
  EXPECT_EQ(sleeper_end, from_millis(1));
}

TEST(VtDomain, NestedHoldsRequireAllReleases) {
  Domain dom;
  dom.hold();
  dom.hold();
  Thread sleeper(dom, [&] { dom.sleep_for(from_millis(1)); });
  dom.unhold();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(dom.now(), kTimeZero);  // still one hold outstanding
  dom.unhold();
  sleeper.join();
  EXPECT_EQ(dom.now(), from_millis(1));
}

TEST(VtDomain, IdleGuardLetsClockAdvancePastExternalBlocking) {
  Domain dom;
  std::promise<void> external;
  auto fut = external.get_future();
  TimePoint worker_end{};
  {
    dom.hold();
    Thread blocker(dom, [&] {
      // Blocking on a non-vt primitive without IdleGuard would freeze the
      // clock for everyone.
      IdleGuard idle;
      fut.wait();
    });
    Thread worker(dom, [&] {
      dom.sleep_for(from_millis(3));
      worker_end = dom.now();
      external.set_value();
    });
    dom.unhold();
  }
  EXPECT_EQ(worker_end, from_millis(3));
}

TEST(VtDomain, CurrentReflectsAttachment) {
  Domain dom;
  EXPECT_EQ(Domain::current(), nullptr);
  {
    AttachGuard guard(dom);
    EXPECT_EQ(Domain::current(), &dom);
  }
  EXPECT_EQ(Domain::current(), nullptr);
}

TEST(VtDomain, ScaledRealModeMatchesVirtualOrdering) {
  // The same pipeline in ScaledReal mode produces the same event ordering
  // (a sanity cross-check that the virtual clock does not distort shapes).
  for (Mode mode : {Mode::Virtual, Mode::ScaledReal}) {
    Domain dom(mode, /*real_scale=*/1e-5);
    VtQueue<int> q(dom);
    std::vector<int> seen;
    {
      dom.hold();
      Thread consumer(dom, [&] {
        while (auto v = q.pop()) seen.push_back(*v);
      });
      Thread producer(dom, [&] {
        for (int i = 0; i < 10; ++i) {
          dom.sleep_for(from_millis(1));
          q.push(i);
        }
        q.close();
      });
      dom.unhold();
    }
    ASSERT_EQ(seen.size(), 10u) << (mode == Mode::Virtual ? "virtual" : "scaled-real");
    for (int i = 0; i < 10; ++i) EXPECT_EQ(seen[static_cast<size_t>(i)], i);
  }
}

// ---------------------------------------------------------------------------
// CalendarQueue: the two-level timer wheel behind the fast-path engines.

TEST(CalendarQueue, PopDueSortsByDeadlineThenInsertionOrder) {
  CalendarQueue<int> q(/*bucket_width_ns=*/100, /*buckets=*/16);
  q.insert(500, 1);
  q.insert(200, 2);
  q.insert(500, 3);
  q.insert(200, 4);
  std::vector<CalendarQueue<int>::Entry> out;
  q.pop_due(500, out);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].value, 2);  // deadline 200, inserted first
  EXPECT_EQ(out[1].value, 4);  // deadline 200, inserted second
  EXPECT_EQ(out[2].value, 1);  // deadline 500, inserted first
  EXPECT_EQ(out[3].value, 3);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, PopDueLeavesLaterEntries) {
  CalendarQueue<int> q(100, 16);
  q.insert(150, 1);
  q.insert(151, 2);  // same bucket as 150, not yet due
  std::vector<CalendarQueue<int>::Entry> out;
  q.pop_due(150, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, 1);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.earliest().value(), 151);
}

TEST(CalendarQueue, OverflowMigratesAsFrontierAdvances) {
  CalendarQueue<int> q(100, 4);  // horizon = 400ns
  q.insert(50, 1);
  q.insert(10'000, 2);  // far beyond the horizon: parked in overflow
  EXPECT_EQ(q.earliest().value(), 50);
  std::vector<CalendarQueue<int>::Entry> out;
  q.pop_due(50, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, 1);
  EXPECT_EQ(q.earliest().value(), 10'000);
  out.clear();
  q.pop_due(10'000, out);  // frontier jumps a full horizon; entry migrates in
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, 2);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, EraseCancelsInRingAndOverflow) {
  CalendarQueue<int> q(100, 4);
  const u64 near = q.insert(120, 1);
  const u64 far = q.insert(50'000, 2);
  EXPECT_TRUE(q.erase(120, near));
  EXPECT_TRUE(q.erase(50'000, far));
  EXPECT_FALSE(q.erase(120, near));  // already gone: no-op
  EXPECT_TRUE(q.empty());
  std::vector<CalendarQueue<int>::Entry> out;
  q.pop_due(100'000, out);
  EXPECT_TRUE(out.empty());
}

TEST(CalendarQueue, PastDeadlineInsertIsStillPopped) {
  CalendarQueue<int> q(100, 4);
  std::vector<CalendarQueue<int>::Entry> out;
  q.insert(900, 1);
  q.pop_due(900, out);  // frontier now at 900
  out.clear();
  q.insert(10, 2);  // behind the frontier: clamped, must not be lost
  EXPECT_EQ(q.earliest().value(), 10);
  q.pop_due(900, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, 2);
  EXPECT_EQ(out[0].deadline, 10);
}

TEST(CalendarQueue, MatchesMultimapReferenceOnRandomOps) {
  // Drive identical random insert/pop sequences into the wheel and a
  // multimap; every pop must yield the same (deadline, seq) sequence. This
  // is the determinism contract the chaos replay suite leans on.
  CalendarQueue<int> q(64, 8);  // tiny wheel: maximum overflow churn
  std::multimap<std::pair<i64, u64>, int> ref;
  Rng rng(20260809);
  i64 now = 0;
  u64 next_seq = 0;
  for (int round = 0; round < 2000; ++round) {
    const int inserts = static_cast<int>(rng.below(4));
    for (int i = 0; i < inserts; ++i) {
      // Mix near-future, same-instant, and far-overflow deadlines.
      const i64 deadline = now + static_cast<i64>(rng.below(3) == 0 ? rng.below(20'000)
                                                                    : rng.below(300));
      const u64 seq = q.insert(deadline, round);
      EXPECT_EQ(seq, next_seq);
      ref.emplace(std::make_pair(std::max(deadline, i64{0}), next_seq), round);
      ++next_seq;
    }
    now += static_cast<i64>(rng.below(400));
    std::vector<CalendarQueue<int>::Entry> out;
    q.pop_due(now, out);
    std::vector<std::pair<i64, u64>> expect;
    while (!ref.empty() && ref.begin()->first.first <= now) {
      expect.push_back(ref.begin()->first);
      ref.erase(ref.begin());
    }
    ASSERT_EQ(out.size(), expect.size()) << "round " << round;
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i].seq, expect[i].second) << "round " << round;
    }
  }
  EXPECT_EQ(q.size(), ref.size());
}

// ---------------------------------------------------------------------------
// Engine selection and parity: every clock behavior must hold under both the
// calendar fast path and the legacy multimap baseline.

TEST(VtEngineSelect, ParseNames) {
  EXPECT_EQ(Domain::parse_engine("calendar"), Domain::Engine::Calendar);
  EXPECT_EQ(Domain::parse_engine("legacy"), Domain::Engine::Legacy);
  EXPECT_EQ(Domain::parse_engine("multimap"), Domain::Engine::Legacy);
  EXPECT_FALSE(Domain::parse_engine("bogus").has_value());
  EXPECT_FALSE(Domain::parse_engine("").has_value());
  EXPECT_STREQ(Domain::engine_name(Domain::Engine::Calendar), "calendar");
  EXPECT_STREQ(Domain::engine_name(Domain::Engine::Legacy), "legacy");
}

class VtEngineParity : public ::testing::TestWithParam<Domain::Engine> {};

TEST_P(VtEngineParity, SleepsSpanningWheelHorizonWakeInOrder) {
  // Durations straddle the calendar's ~67ms ring horizon, so the calendar
  // engine exercises overflow parking + migration while legacy just sorts.
  Domain dom(Mode::Virtual, 1e-3, GetParam());
  const double millis[] = {100.0, 1.0, 500.0, 0.01, 67.0, 200.0, 3.5, 1000.0};
  std::mutex mu;
  std::vector<double> order;
  {
    std::vector<Thread> threads;
    HoldGuard hold(dom);
    for (double ms : millis) {
      threads.emplace_back(dom, [&, ms] {
        dom.sleep_for(from_millis(ms));
        std::scoped_lock lock(mu);
        order.push_back(ms);
      });
    }
  }
  std::vector<double> expect(std::begin(millis), std::end(millis));
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(order, expect);
  EXPECT_EQ(dom.now(), from_millis(1000.0));
}

TEST_P(VtEngineParity, ClockStatsCountAdvancesAndWakes) {
  Domain dom(Mode::Virtual, 1e-3, GetParam());
  AttachGuard guard(dom);
  for (int i = 0; i < 5; ++i) dom.sleep_for(from_millis(1));
  const Domain::ClockStats stats = dom.clock_stats();
  EXPECT_EQ(stats.advances, 5u);
  EXPECT_EQ(stats.events_dispatched, 5u);
  EXPECT_EQ(stats.sleepers_peak, 1u);
}

TEST_P(VtEngineParity, StressManyThreadsHorizonCrossingSleeps) {
  // TSan target: concurrent sleeps whose durations are scattered across the
  // wheel ring, the overflow map, and same-instant collisions.
  Domain dom(Mode::Virtual, 1e-3, GetParam());
  std::atomic<int> completed{0};
  {
    std::vector<Thread> threads;
    HoldGuard hold(dom);
    for (int t = 0; t < 12; ++t) {
      threads.emplace_back(dom, [&dom, &completed, t] {
        Rng rng(static_cast<u64>(t) + 977);
        for (int i = 0; i < 40; ++i) {
          switch (rng.below(3)) {
            case 0: dom.sleep_for(from_micros(static_cast<double>(rng.below(500) + 1))); break;
            case 1: dom.sleep_for(from_millis(static_cast<double>(rng.below(60) + 1))); break;
            default: dom.sleep_for(from_millis(static_cast<double>(rng.below(300) + 67))); break;
          }
        }
        completed.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(completed.load(), 12);
  const Domain::ClockStats stats = dom.clock_stats();
  EXPECT_GE(stats.events_dispatched, 12u * 40u);
  EXPECT_GE(stats.sleepers_peak, 1u);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, VtEngineParity,
                         ::testing::Values(Domain::Engine::Calendar, Domain::Engine::Legacy),
                         [](const auto& info) { return Domain::engine_name(info.param); });

// ---------------------------------------------------------------------------
// Alarm: the cancellable one-shot deadline the TaskRunner pump parks on.

TEST(VtAlarm, DeadlineReachedReturnsTrue) {
  Domain dom;
  AttachGuard guard(dom);
  Alarm alarm(dom);
  EXPECT_TRUE(alarm.wait_until(from_millis(5)));
  EXPECT_EQ(dom.now(), from_millis(5));
}

TEST(VtAlarm, PastDeadlineReturnsImmediately) {
  Domain dom;
  AttachGuard guard(dom);
  dom.sleep_for(from_millis(2));
  Alarm alarm(dom);
  EXPECT_TRUE(alarm.wait_until(from_millis(1)));
  EXPECT_EQ(dom.now(), from_millis(2));
}

TEST(VtAlarm, CancelLatchesForNextWait) {
  Domain dom;
  AttachGuard guard(dom);
  Alarm alarm(dom);
  alarm.cancel();
  EXPECT_FALSE(alarm.wait_until(from_seconds(100)));
  EXPECT_EQ(dom.now(), kTimeZero);  // returned without sleeping
  // The latch is one-shot: the next wait runs to its deadline.
  EXPECT_TRUE(alarm.wait_until(from_millis(1)));
}

TEST(VtAlarm, CancelWhileParkedWakesAtCancelInstant) {
  Domain dom;
  Alarm alarm(dom);
  bool reached = true;
  TimePoint woke{};
  {
    dom.hold();
    Thread waiter(dom, [&] {
      reached = alarm.wait_until(from_seconds(100));
      woke = dom.now();
    });
    Thread canceller(dom, [&] {
      dom.sleep_for(from_millis(2));
      alarm.cancel();
    });
    dom.unhold();
  }
  EXPECT_FALSE(reached);
  EXPECT_EQ(woke, from_millis(2));
  // The 100s deadline was erased from the queue, not left to fire.
  EXPECT_EQ(dom.now(), from_millis(2));
}

TEST(VtAlarm, ScaledRealDeadlineAndLatchedCancel) {
  Domain dom(Mode::ScaledReal, /*real_scale=*/1e-6);
  AttachGuard guard(dom);
  Alarm alarm(dom);
  EXPECT_TRUE(alarm.wait_until(dom.now() + from_millis(1)));
  alarm.cancel();
  EXPECT_FALSE(alarm.wait_until(dom.now() + from_seconds(1000)));
}

TEST(VtAlarm, StressWaitCancelRaces) {
  // A waiter loops short alarm waits while a canceller fires at random
  // virtual offsets: every wait must terminate with a coherent verdict
  // (cancelled => before the deadline). TSan target.
  Domain dom;
  Alarm alarm(dom);
  int cancelled = 0;
  int reached = 0;
  {
    dom.hold();
    Thread waiter(dom, [&] {
      for (int i = 0; i < 200; ++i) {
        const TimePoint deadline = dom.now() + from_micros(120);
        if (alarm.wait_until(deadline)) {
          ++reached;
          EXPECT_GE(dom.now(), deadline);
        } else {
          ++cancelled;
          EXPECT_LT(dom.now(), deadline);
        }
      }
    });
    Thread canceller(dom, [&] {
      Rng rng(31337);
      for (int i = 0; i < 150; ++i) {
        dom.sleep_for(from_micros(static_cast<double>(rng.below(200) + 1)));
        alarm.cancel();
      }
    });
    dom.unhold();
  }
  EXPECT_EQ(cancelled + reached, 200);
}

}  // namespace
}  // namespace gpuvm::vt
