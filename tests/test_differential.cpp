// Differential property tests: randomized CUDA-call sequences must produce
// byte-identical results on the bare runtime (DirectApi) and through the
// gpuvm daemon (FrontendApi) -- including under artificial memory pressure
// that forces the gpuvm path to swap constantly. This is the apples-to-
// apples guarantee behind every performance comparison in the evaluation.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/direct_api.hpp"
#include "core/frontend.hpp"
#include "core/runtime.hpp"
#include "sim/machine.hpp"

namespace gpuvm::core {
namespace {

void register_kernels(sim::SimMachine& machine) {
  sim::KernelDef scale_add;
  scale_add.name = "scale_add";  // dst[i] = a * src[i] + dst[i]
  scale_add.body = [](sim::KernelExecContext& kc) {
    auto src = kc.buffer<float>(0);
    auto dst = kc.buffer<float>(1);
    const double a = kc.scalar_f64(2);
    const u64 n = static_cast<u64>(kc.scalar_i64(3));
    if (src.size() < n || dst.size() < n) return Status::ErrorLaunchFailure;
    for (u64 i = 0; i < n; ++i) dst[i] += static_cast<float>(a) * src[i];
    return Status::Ok;
  };
  scale_add.cost = sim::per_thread_cost(2.0, 8.0);
  machine.kernels().add(scale_add);

  sim::KernelDef fill;
  fill.name = "fill";  // dst[i] = v
  fill.body = [](sim::KernelExecContext& kc) {
    auto dst = kc.buffer<float>(0);
    const double v = kc.scalar_f64(1);
    const u64 n = static_cast<u64>(kc.scalar_i64(2));
    if (dst.size() < n) return Status::ErrorLaunchFailure;
    for (u64 i = 0; i < n; ++i) dst[i] = static_cast<float>(v);
    return Status::Ok;
  };
  fill.cost = sim::per_thread_cost(1.0, 4.0);
  machine.kernels().add(fill);
}

/// Runs a seeded random op sequence; returns a digest of every byte the
/// application observed (copy-outs) plus the status sequence.
struct Trace {
  std::vector<Status> statuses;
  std::vector<std::vector<float>> observations;

  bool operator==(const Trace&) const = default;
};

Trace run_sequence(GpuApi& api, u64 seed, int ops, u64 max_floats) {
  Trace trace;
  Rng rng(seed);
  (void)api.register_kernels({"scale_add", "fill"});

  struct Buffer {
    VirtualPtr ptr;
    u64 floats;
  };
  std::vector<Buffer> buffers;

  const auto random_buffer = [&]() -> Buffer& {
    return buffers[rng.below(buffers.size())];
  };

  for (int op = 0; op < ops; ++op) {
    const u64 kind = rng.below(6);
    if (buffers.empty() || kind == 0) {
      if (buffers.size() >= 6) continue;
      const u64 floats = rng.below(max_floats) + 16;
      auto p = api.malloc(floats * sizeof(float));
      trace.statuses.push_back(p.status());
      if (p) buffers.push_back({p.value(), floats});
      continue;
    }
    switch (kind) {
      case 1: {  // host -> device (possibly interior)
        Buffer& buf = random_buffer();
        const u64 offset = rng.below(buf.floats);
        const u64 count = rng.below(buf.floats - offset) + 1;
        std::vector<float> data(count);
        for (auto& v : data) v = static_cast<float>(rng.below(1000));
        trace.statuses.push_back(
            api.memcpy_h2d(buf.ptr + offset * sizeof(float), std::as_bytes(std::span(data))));
        break;
      }
      case 2: {  // device -> host: record observation
        Buffer& buf = random_buffer();
        const u64 offset = rng.below(buf.floats);
        const u64 count = rng.below(buf.floats - offset) + 1;
        std::vector<float> data(count, -1.0f);
        trace.statuses.push_back(api.memcpy_d2h(std::as_writable_bytes(std::span(data)),
                                                buf.ptr + offset * sizeof(float),
                                                count * sizeof(float)));
        trace.observations.push_back(std::move(data));
        break;
      }
      case 3: {  // kernel launch
        Buffer& src = random_buffer();
        Buffer& dst = random_buffer();
        const u64 n = std::min(src.floats, dst.floats);
        trace.statuses.push_back(
            api.launch("scale_add", {{static_cast<u32>((n + 255) / 256), 1, 1}, {256, 1, 1}},
                       {sim::KernelArg::dev(src.ptr), sim::KernelArg::dev(dst.ptr),
                        sim::KernelArg::f64v(static_cast<double>(rng.below(5))),
                        sim::KernelArg::i64v(static_cast<i64>(n))}));
        break;
      }
      case 4: {  // fill kernel
        Buffer& buf = random_buffer();
        trace.statuses.push_back(api.launch(
            "fill", {{static_cast<u32>((buf.floats + 255) / 256), 1, 1}, {256, 1, 1}},
            {sim::KernelArg::dev(buf.ptr), sim::KernelArg::f64v(static_cast<double>(op)),
             sim::KernelArg::i64v(static_cast<i64>(buf.floats))}));
        break;
      }
      case 5: {  // free
        const u64 index = rng.below(buffers.size());
        trace.statuses.push_back(api.free(buffers[index].ptr));
        buffers.erase(buffers.begin() + static_cast<long>(index));
        break;
      }
      default:
        break;
    }
  }
  // Final observation of everything still allocated.
  for (const Buffer& buf : buffers) {
    std::vector<float> data(buf.floats, -2.0f);
    trace.statuses.push_back(api.copy_out(data, buf.ptr));
    trace.observations.push_back(std::move(data));
    (void)api.free(buf.ptr);
  }
  return trace;
}

class DifferentialTest : public ::testing::TestWithParam<u64> {};

TEST_P(DifferentialTest, BareAndGpuvmObserveIdenticalBytes) {
  const u64 seed = GetParam();
  // Plenty of device memory: no swapping, pure protocol equivalence.
  Trace direct_trace;
  {
    vt::Domain dom;
    vt::AttachGuard guard(dom);
    sim::SimMachine machine(dom, sim::SimParams{1});
    machine.add_gpu(sim::test_gpu(8 << 20));
    register_kernels(machine);
    cudart::CudaRt rt(machine, cudart::CudaRtConfig{4 * 1024, 8});
    DirectApi api(rt);
    direct_trace = run_sequence(api, seed, 120, 8 * 1024);
  }
  Trace gpuvm_trace;
  {
    vt::Domain dom;
    vt::AttachGuard guard(dom);
    sim::SimMachine machine(dom, sim::SimParams{1});
    machine.add_gpu(sim::test_gpu(8 << 20));
    register_kernels(machine);
    cudart::CudaRt rt(machine, cudart::CudaRtConfig{4 * 1024, 8});
    Runtime runtime(rt);
    FrontendApi api(runtime.connect());
    gpuvm_trace = run_sequence(api, seed, 120, 8 * 1024);
  }
  EXPECT_EQ(direct_trace.observations, gpuvm_trace.observations);
}

TEST_P(DifferentialTest, GpuvmUnderMemoryPressureMatchesAmpleMemoryRun) {
  // The same sequence against a tiny device (constant swapping) and a huge
  // device (no swapping) must observe identical bytes: swapping is
  // invisible to the application.
  const u64 seed = GetParam() * 7919;
  const auto run_with_capacity = [&](u64 capacity) {
    vt::Domain dom;
    vt::AttachGuard guard(dom);
    sim::SimMachine machine(dom, sim::SimParams{1});
    machine.add_gpu(sim::test_gpu(capacity));
    register_kernels(machine);
    cudart::CudaRt rt(machine, cudart::CudaRtConfig{4 * 1024, 8});
    Runtime runtime(rt);
    FrontendApi api(runtime.connect());
    return run_sequence(api, seed, 100, 6 * 1024);  // up to ~24 KiB buffers
  };
  const Trace ample = run_with_capacity(8 << 20);
  const Trace pressured = run_with_capacity(96 * 1024);  // a few buffers fit
  EXPECT_EQ(ample.observations, pressured.observations);
  EXPECT_EQ(ample.statuses, pressured.statuses);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest, ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42));

}  // namespace
}  // namespace gpuvm::core
