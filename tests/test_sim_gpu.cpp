// Tests for the simulated GPU device (sim/sim_gpu.hpp) and machine.
#include "sim/sim_gpu.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <vector>

#include "sim/machine.hpp"

namespace gpuvm::sim {
namespace {

std::span<const std::byte> as_bytes(const std::vector<float>& v) {
  return std::as_bytes(std::span<const float>(v));
}
std::span<std::byte> as_writable_bytes(std::vector<float>& v) {
  return std::as_writable_bytes(std::span<float>(v));
}

class SimGpuTest : public ::testing::Test {
 protected:
  SimGpuTest() : guard_(dom_), gpu_(GpuId{1}, test_gpu(1 << 20), SimParams{1}, dom_) {}

  vt::Domain dom_;
  vt::AttachGuard guard_;
  SimGpu gpu_;
};

TEST_F(SimGpuTest, MallocCopyRoundTrip) {
  auto ptr = gpu_.malloc(1024 * sizeof(float));
  ASSERT_TRUE(ptr.has_value());

  std::vector<float> src(1024);
  std::iota(src.begin(), src.end(), 0.0f);
  ASSERT_EQ(gpu_.copy_to_device(ptr.value(), as_bytes(src)), Status::Ok);

  std::vector<float> dst(1024, -1.0f);
  ASSERT_EQ(gpu_.copy_from_device(as_writable_bytes(dst), ptr.value(), dst.size() * sizeof(float)),
            Status::Ok);
  EXPECT_EQ(src, dst);
}

TEST_F(SimGpuTest, TransfersTakeModeledTime) {
  auto ptr = gpu_.malloc(1 << 18);
  ASSERT_TRUE(ptr.has_value());
  std::vector<std::byte> buf(1 << 18);
  const vt::TimePoint before = dom_.now();
  ASSERT_EQ(gpu_.copy_to_device(ptr.value(), buf), Status::Ok);
  const vt::Duration took = dom_.now() - before;
  // 256 KiB over 5 GB/s is ~52us, plus 1us fixed latency.
  const vt::Duration expected = transfer_time(gpu_.spec(), gpu_.params(), 1 << 18);
  EXPECT_EQ(took, expected);
  EXPECT_GT(took, vt::from_micros(50));
  EXPECT_LT(took, vt::from_micros(60));
}

TEST_F(SimGpuTest, OutOfMemoryReturnsAllocationError) {
  auto big = gpu_.malloc(1 << 20);
  ASSERT_TRUE(big.has_value());
  auto fail = gpu_.malloc(1);
  EXPECT_EQ(fail.status(), Status::ErrorMemoryAllocation);
  EXPECT_EQ(gpu_.free(big.value()), Status::Ok);
  EXPECT_TRUE(gpu_.malloc(1).has_value());
}

TEST_F(SimGpuTest, InteriorPointerCopyWorks) {
  auto ptr = gpu_.malloc(4096);
  ASSERT_TRUE(ptr.has_value());
  std::vector<float> src{1.f, 2.f, 3.f};
  ASSERT_EQ(gpu_.copy_to_device(ptr.value() + 1024, as_bytes(src)), Status::Ok);
  std::vector<float> dst(3, 0.f);
  ASSERT_EQ(gpu_.copy_from_device(as_writable_bytes(dst), ptr.value() + 1024, sizeof(float) * 3),
            Status::Ok);
  EXPECT_EQ(src, dst);
}

TEST_F(SimGpuTest, OutOfBoundsCopyRejected) {
  auto ptr = gpu_.malloc(1024);
  ASSERT_TRUE(ptr.has_value());
  std::vector<std::byte> big(2048);
  EXPECT_EQ(gpu_.copy_to_device(ptr.value(), big), Status::ErrorInvalidValue);
  EXPECT_EQ(gpu_.copy_to_device(ptr.value() + 512, std::span(big).first(1024)),
            Status::ErrorInvalidValue);
  EXPECT_EQ(gpu_.copy_to_device(kNullDevicePtr, std::span(big).first(16)),
            Status::ErrorInvalidDevicePointer);
}

TEST_F(SimGpuTest, FreeInvalidPointerRejected) {
  EXPECT_EQ(gpu_.free(DevicePtr{123456}), Status::ErrorInvalidDevicePointer);
  auto ptr = gpu_.malloc(256);
  ASSERT_TRUE(ptr.has_value());
  EXPECT_EQ(gpu_.free(ptr.value()), Status::Ok);
  EXPECT_EQ(gpu_.free(ptr.value()), Status::ErrorInvalidDevicePointer);
}

TEST_F(SimGpuTest, KernelExecutesBodyOverDeviceData) {
  KernelDef def;
  def.name = "scale2";
  def.body = [](KernelExecContext& ctx) {
    auto data = ctx.buffer<float>(0);
    const i64 n = ctx.scalar_i64(1);
    for (i64 i = 0; i < n; ++i) data[static_cast<size_t>(i)] *= 2.0f;
    return Status::Ok;
  };
  def.cost = per_thread_cost(1.0, 8.0);

  auto ptr = gpu_.malloc(128 * sizeof(float));
  ASSERT_TRUE(ptr.has_value());
  std::vector<float> src(128, 3.0f);
  ASSERT_EQ(gpu_.copy_to_device(ptr.value(), as_bytes(src)), Status::Ok);

  LaunchConfig config{{1, 1, 1}, {128, 1, 1}};
  ASSERT_EQ(gpu_.launch(def, config, {KernelArg::dev(ptr.value()), KernelArg::i64v(128)}),
            Status::Ok);

  std::vector<float> out(128);
  ASSERT_EQ(gpu_.copy_from_device(as_writable_bytes(out), ptr.value(), out.size() * sizeof(float)),
            Status::Ok);
  for (float v : out) EXPECT_EQ(v, 6.0f);
  EXPECT_EQ(gpu_.stats().kernels_launched, 1u);
}

TEST_F(SimGpuTest, KernelTimeScalesWithLaunchGeometry) {
  KernelDef def;
  def.name = "noop";
  def.body = [](KernelExecContext&) { return Status::Ok; };
  def.cost = per_thread_cost(1000.0, 0.0);

  const vt::TimePoint t0 = dom_.now();
  ASSERT_EQ(gpu_.launch(def, {{64, 1, 1}, {256, 1, 1}}, {}), Status::Ok);
  const vt::Duration small = dom_.now() - t0;

  const vt::TimePoint t1 = dom_.now();
  ASSERT_EQ(gpu_.launch(def, {{640, 1, 1}, {256, 1, 1}}, {}), Status::Ok);
  const vt::Duration large = dom_.now() - t1;

  // 10x the threads => ~10x the compute time (minus fixed launch overhead).
  const double ratio = static_cast<double>(large.count()) / static_cast<double>(small.count());
  EXPECT_GT(ratio, 8.0);
  EXPECT_LT(ratio, 10.5);
}

TEST_F(SimGpuTest, InvalidLaunchConfigurationsRejected) {
  KernelDef def;
  def.name = "noop";
  def.body = [](KernelExecContext&) { return Status::Ok; };
  EXPECT_EQ(gpu_.launch(def, {{0, 1, 1}, {32, 1, 1}}, {}), Status::ErrorInvalidConfiguration);
  EXPECT_EQ(gpu_.launch(def, {{1, 1, 1}, {2048, 1, 1}}, {}), Status::ErrorInvalidConfiguration);
}

TEST_F(SimGpuTest, LaunchWithStalePointerRejected) {
  KernelDef def;
  def.name = "noop";
  def.body = [](KernelExecContext&) { return Status::Ok; };
  auto ptr = gpu_.malloc(256);
  ASSERT_TRUE(ptr.has_value());
  ASSERT_EQ(gpu_.free(ptr.value()), Status::Ok);
  EXPECT_EQ(gpu_.launch(def, {{1, 1, 1}, {32, 1, 1}}, {KernelArg::dev(ptr.value())}),
            Status::ErrorInvalidDevicePointer);
}

TEST_F(SimGpuTest, ComputeEngineSerializesKernelsFcfs) {
  KernelDef def;
  def.name = "noop";
  def.body = [](KernelExecContext&) { return Status::Ok; };
  // 100 GFLOPS effective, 1e8 flops => 1ms each.
  def.cost = [](const LaunchConfig&, const std::vector<KernelArg>&) {
    return KernelCost{1e8, 0.0};
  };

  vt::TimePoint end_a{};
  vt::TimePoint end_b{};
  {
    dom_.hold();
    vt::Thread a(dom_, [&] {
      EXPECT_EQ(gpu_.launch(def, {{1, 1, 1}, {32, 1, 1}}, {}), Status::Ok);
      end_a = dom_.now();
    });
    vt::Thread b(dom_, [&] {
      EXPECT_EQ(gpu_.launch(def, {{1, 1, 1}, {32, 1, 1}}, {}), Status::Ok);
      end_b = dom_.now();
    });
    dom_.unhold();
  }
  // Two 1ms kernels on one compute engine: the later one ends at ~2ms.
  const vt::TimePoint later = std::max(end_a, end_b);
  EXPECT_GE(later, vt::from_millis(2));
  EXPECT_LT(later, vt::from_millis(2.1));
}

TEST_F(SimGpuTest, FailureInjectionFailsAllOps) {
  auto ptr = gpu_.malloc(256);
  ASSERT_TRUE(ptr.has_value());
  gpu_.inject_failure();
  EXPECT_FALSE(gpu_.healthy());
  EXPECT_EQ(gpu_.malloc(16).status(), Status::ErrorDeviceUnavailable);
  EXPECT_EQ(gpu_.free(ptr.value()), Status::ErrorDeviceUnavailable);
  std::vector<std::byte> buf(16);
  EXPECT_EQ(gpu_.copy_to_device(ptr.value(), buf), Status::ErrorDeviceUnavailable);
}

TEST_F(SimGpuTest, FailAfterOpsCountsDown) {
  gpu_.fail_after_ops(2);
  EXPECT_TRUE(gpu_.malloc(16).has_value());
  EXPECT_TRUE(gpu_.malloc(16).has_value());
  EXPECT_EQ(gpu_.malloc(16).status(), Status::ErrorDeviceUnavailable);
  EXPECT_FALSE(gpu_.healthy());
}

// Chaos audit: the fail_after_ops countdown is decremented by every costed
// op from every vt thread concurrently. The 1 -> 0 transition must fire the
// failure exactly once -- no double-fire, no lost budget -- so with a budget
// of 100 ops, exactly 100 succeed no matter how many threads hammer it.
TEST_F(SimGpuTest, FailAfterOpsExactlyOnceUnderConcurrentHammer) {
  constexpr int kThreads = 16;
  constexpr int kAttemptsPerThread = 20;  // 320 attempts >> 100 budget
  constexpr u64 kBudget = 100;
  gpu_.fail_after_ops(kBudget);

  std::atomic<u64> ok{0};
  std::atomic<u64> unavailable{0};
  {
    std::vector<vt::Thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back(dom_, [this, &ok, &unavailable] {
        for (int i = 0; i < kAttemptsPerThread; ++i) {
          auto r = gpu_.malloc(16);
          if (r.has_value()) ok.fetch_add(1, std::memory_order_relaxed);
          else if (r.status() == Status::ErrorDeviceUnavailable) {
            unavailable.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
  }  // joins

  EXPECT_EQ(ok.load(), kBudget);
  EXPECT_EQ(unavailable.load(), static_cast<u64>(kThreads * kAttemptsPerThread) - kBudget);
  EXPECT_FALSE(gpu_.healthy());
  EXPECT_EQ(gpu_.stats().injected_failures, 1u);
  EXPECT_EQ(gpu_.stats().mallocs, kBudget);
  EXPECT_EQ(gpu_.malloc(16).status(), Status::ErrorDeviceUnavailable);
}

TEST_F(SimGpuTest, AllocFaultPulseFailsAllocationsButKeepsDeviceHealthy) {
  gpu_.fail_next_allocs(2);
  EXPECT_EQ(gpu_.malloc(16).status(), Status::ErrorMemoryAllocation);
  EXPECT_EQ(gpu_.malloc(16).status(), Status::ErrorMemoryAllocation);
  EXPECT_TRUE(gpu_.healthy());
  auto ok = gpu_.malloc(16);
  EXPECT_TRUE(ok.has_value()) << to_string(ok.status());
  EXPECT_EQ(gpu_.stats().alloc_faults, 2u);
}

TEST_F(SimGpuTest, PeekPokeBypassTiming) {
  auto ptr = gpu_.malloc(64);
  ASSERT_TRUE(ptr.has_value());
  std::vector<std::byte> src(64, std::byte{0x5a});
  const vt::TimePoint before = dom_.now();
  ASSERT_EQ(gpu_.poke(ptr.value(), src), Status::Ok);
  std::vector<std::byte> dst(64);
  ASSERT_EQ(gpu_.peek(dst, ptr.value(), 64), Status::Ok);
  EXPECT_EQ(dom_.now(), before);
  EXPECT_EQ(src, dst);
}

TEST_F(SimGpuTest, DeviceToDeviceCopy) {
  auto a = gpu_.malloc(256);
  auto b = gpu_.malloc(256);
  ASSERT_TRUE(a && b);
  std::vector<std::byte> src(256, std::byte{7});
  ASSERT_EQ(gpu_.poke(a.value(), src), Status::Ok);
  ASSERT_EQ(gpu_.copy_device_to_device(b.value(), a.value(), 256), Status::Ok);
  std::vector<std::byte> dst(256);
  ASSERT_EQ(gpu_.peek(dst, b.value(), 256), Status::Ok);
  EXPECT_EQ(src, dst);
}

// ---- SimMachine ------------------------------------------------------------

TEST(SimMachine, AddRemoveFailLifecycle) {
  vt::Domain dom;
  vt::AttachGuard guard(dom);
  SimMachine machine(dom, SimParams{1});
  const GpuId a = machine.add_gpu(test_gpu());
  const GpuId b = machine.add_gpu(test_gpu());
  EXPECT_EQ(machine.gpus().size(), 2u);

  ASSERT_EQ(machine.remove_gpu(a), Status::Ok);
  EXPECT_EQ(machine.gpus().size(), 1u);
  EXPECT_EQ(machine.gpus()[0], b);
  EXPECT_NE(machine.gpu(a), nullptr);  // object survives for error reporting
  EXPECT_FALSE(machine.gpu(a)->healthy());

  EXPECT_EQ(machine.remove_gpu(a), Status::ErrorInvalidDevice);
  ASSERT_EQ(machine.fail_gpu(b), Status::Ok);
  EXPECT_TRUE(machine.gpus().empty());
}

TEST(SimMachine, TopologyNotifications) {
  vt::Domain dom;
  vt::AttachGuard guard(dom);
  SimMachine machine(dom, SimParams{1});
  std::vector<std::pair<TopologyEvent, GpuId>> events;
  machine.subscribe([&](TopologyEvent e, GpuId id) { events.emplace_back(e, id); });

  const GpuId a = machine.add_gpu(test_gpu());
  const GpuId b = machine.add_gpu(test_gpu());
  ASSERT_EQ(machine.fail_gpu(a), Status::Ok);
  ASSERT_EQ(machine.remove_gpu(b), Status::Ok);

  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0], (std::pair{TopologyEvent::GpuAdded, a}));
  EXPECT_EQ(events[1], (std::pair{TopologyEvent::GpuAdded, b}));
  EXPECT_EQ(events[2], (std::pair{TopologyEvent::GpuFailed, a}));
  EXPECT_EQ(events[3], (std::pair{TopologyEvent::GpuRemoved, b}));
}

TEST(SimMachine, DistinctAddressSpacesPerGpu) {
  vt::Domain dom;
  vt::AttachGuard guard(dom);
  SimMachine machine(dom, SimParams{1});
  SimGpu* g1 = machine.gpu(machine.add_gpu(test_gpu()));
  SimGpu* g2 = machine.gpu(machine.add_gpu(test_gpu()));
  auto p1 = g1->malloc(256);
  auto p2 = g2->malloc(256);
  ASSERT_TRUE(p1 && p2);
  // A pointer from one device is invalid on the other.
  EXPECT_FALSE(g2->valid_pointer(p1.value()));
  EXPECT_FALSE(g1->valid_pointer(p2.value()));
  EXPECT_EQ(g2->free(p1.value()), Status::ErrorInvalidDevicePointer);
}

TEST(SimMachine, PaperSpecsHaveExpectedCapacities) {
  SimParams params{1024};
  EXPECT_EQ(tesla_c2050(params).memory_bytes, 3ull * 1024 * 1024);
  EXPECT_EQ(tesla_c1060(params).memory_bytes, 4ull * 1024 * 1024);
  EXPECT_EQ(quadro_2000(params).memory_bytes, 1ull * 1024 * 1024);
  // Relative compute power ordering drives the load-balancing experiments.
  EXPECT_GT(tesla_c2050(params).compute_power(), tesla_c1060(params).compute_power());
  EXPECT_GT(tesla_c1060(params).compute_power(), quadro_2000(params).compute_power());
}

}  // namespace
}  // namespace gpuvm::sim
