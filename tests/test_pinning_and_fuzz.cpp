// Two coverage suites:
//  1. In-kernel-malloc pinning: the paper excludes applications that
//     allocate device memory inside kernels from sharing and dynamic
//     scheduling (section 1). Kernels carry a PTX-detection stand-in flag;
//     launching one pins the context to its vGPU and exempts it from
//     inter-application swap.
//  2. Model-based fuzz of the memory manager: a random operation stream
//     (copies, launches, swaps, checkpoints, device loss) is mirrored
//     against a trivial host-side reference model; observable bytes must
//     match at every read.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hpp"
#include "core/frontend.hpp"
#include "core/memory_manager.hpp"
#include "core/runtime.hpp"
#include "sim/machine.hpp"

namespace gpuvm::core {
namespace {

// ---- 1. Pinning -------------------------------------------------------------

class PinningTest : public ::testing::Test {
 protected:
  PinningTest() : guard_(dom_), machine_(dom_, sim::SimParams{1}) {
    machine_.add_gpu(sim::test_gpu(1 << 20));
    rt_ = std::make_unique<cudart::CudaRt>(machine_, cudart::CudaRtConfig{4 * 1024, 8});

    sim::KernelDef dyn;
    dyn.name = "dynamic_alloc_kernel";
    dyn.uses_device_malloc = true;  // PTX detection stand-in
    dyn.body = [](sim::KernelExecContext&) { return Status::Ok; };
    dyn.cost = sim::per_thread_cost(1.0, 0.0);
    machine_.kernels().add(dyn);

    sim::KernelDef plain;
    plain.name = "plain_kernel";
    plain.body = [](sim::KernelExecContext&) { return Status::Ok; };
    plain.cost = sim::per_thread_cost(1.0, 0.0);
    machine_.kernels().add(plain);
  }

  vt::Domain dom_;
  vt::AttachGuard guard_;
  sim::SimMachine machine_;
  std::unique_ptr<cudart::CudaRt> rt_;
};

TEST_F(PinningTest, DeviceMallocKernelPinsContext) {
  RuntimeConfig config;
  config.vgpus_per_device = 2;
  Runtime runtime(*rt_, config);

  FrontendApi pinned(runtime.connect());
  ASSERT_EQ(pinned.register_kernels({"dynamic_alloc_kernel"}), Status::Ok);
  auto buf = pinned.malloc(600 * 1024);  // most of the 1 MiB device
  ASSERT_TRUE(buf.has_value());
  std::vector<std::byte> data(600 * 1024, std::byte{1});
  ASSERT_EQ(pinned.memcpy_h2d(buf.value(), data), Status::Ok);
  ASSERT_EQ(pinned.launch("dynamic_alloc_kernel", {{1, 1, 1}, {32, 1, 1}},
                          {sim::KernelArg::dev(buf.value())}),
            Status::Ok);

  // A second app needing the memory cannot evict the pinned context even
  // though it idles in a CPU phase: its launch must fail after retries
  // rather than break the pinned app's residency.
  FrontendApi other(runtime.connect());
  ASSERT_EQ(other.register_kernels({"plain_kernel"}), Status::Ok);
  auto big = other.malloc(700 * 1024);
  ASSERT_TRUE(big.has_value());
  // The pinned context stays resident: victim_candidates excludes it.
  EXPECT_EQ(runtime.memory().victim_candidates(machine_.all_gpus()[0], 1, ContextId{999}).size(),
            1u);  // listed by the memory manager...
  // ...but the runtime refuses to evict it; verify its residency survives a
  // contending launch attempt running into backoff. (Launch of `other`
  // would block forever, so instead check the eviction predicate directly.)
  EXPECT_GT(runtime.memory().resident_bytes(ContextId{1}, machine_.all_gpus()[0]), 0u);
}

TEST_F(PinningTest, PinnedContextKeepsItsVgpu) {
  RuntimeConfig config;
  config.vgpus_per_device = 1;
  config.enable_migration = true;
  Runtime runtime(*rt_, config);

  FrontendApi api(runtime.connect());
  ASSERT_EQ(api.register_kernels({"dynamic_alloc_kernel"}), Status::Ok);
  auto buf = api.malloc(1024);
  ASSERT_TRUE(buf.has_value());
  ASSERT_EQ(api.launch("dynamic_alloc_kernel", {{1, 1, 1}, {32, 1, 1}},
                       {sim::KernelArg::dev(buf.value())}),
            Status::Ok);
  // Pinned: binding held even though a faster GPU could appear.
  EXPECT_TRUE(runtime.scheduler().context_bound(ContextId{1}));
  auto fast = sim::test_gpu(1 << 20);
  fast.effective_gflops = 1000.0;
  machine_.add_gpu(fast);
  dom_.sleep_for(vt::from_millis(1));
  EXPECT_TRUE(runtime.scheduler().context_bound(ContextId{1}));
}

// ---- 2. Model-based fuzz ------------------------------------------------------

struct RefBuffer {
  std::vector<std::byte> bytes;
};

class MmFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(MmFuzz, RandomOpsMatchReferenceModel) {
  vt::Domain dom;
  vt::AttachGuard guard(dom);
  sim::SimMachine machine(dom, sim::SimParams{1});
  const GpuId g1 = machine.add_gpu(sim::test_gpu(256 * 1024));
  const GpuId g2 = machine.add_gpu(sim::test_gpu(256 * 1024));
  cudart::CudaRt rt(machine, cudart::CudaRtConfig{4 * 1024, 8});
  MemoryManager mm(rt);
  const ClientId slot1 = rt.create_client();
  (void)rt.set_device(slot1, 0);
  const ClientId slot2 = rt.create_client();
  (void)rt.set_device(slot2, 1);

  const ContextId ctx{1};
  mm.add_context(ctx);

  Rng rng(GetParam());
  std::map<VirtualPtr, RefBuffer> model;

  const auto random_live = [&]() {
    auto it = model.begin();
    std::advance(it, static_cast<long>(rng.below(model.size())));
    return it;
  };

  for (int step = 0; step < 600; ++step) {
    const u64 op = rng.below(10);
    if (model.empty() || op == 0) {
      if (model.size() >= 8) continue;
      const u64 size = rng.below(24 * 1024) + 64;
      auto p = mm.on_malloc(ctx, size);
      ASSERT_TRUE(p.has_value());
      model.emplace(p.value(), RefBuffer{std::vector<std::byte>(size, std::byte{0})});
      // Note: real swap starts zeroed too (vector value-initialization).
      continue;
    }
    switch (op) {
      case 1: case 2: {  // host write (partial, random offset)
        auto it = random_live();
        const u64 size = it->second.bytes.size();
        const u64 offset = rng.below(size);
        const u64 count = rng.below(size - offset) + 1;
        std::vector<std::byte> data(count);
        for (auto& b : data) b = static_cast<std::byte>(rng.below(256));
        ASSERT_EQ(mm.on_copy_h2d(ctx, it->first + offset, data, std::nullopt), Status::Ok);
        std::copy(data.begin(), data.end(), it->second.bytes.begin() + static_cast<long>(offset));
        break;
      }
      case 3: case 4: {  // read back and compare (the oracle)
        auto it = random_live();
        const u64 size = it->second.bytes.size();
        const u64 offset = rng.below(size);
        const u64 count = rng.below(size - offset) + 1;
        std::vector<std::byte> out(count);
        ASSERT_EQ(mm.on_copy_d2h(ctx, out, it->first + offset, count), Status::Ok);
        ASSERT_TRUE(std::equal(out.begin(), out.end(),
                               it->second.bytes.begin() + static_cast<long>(offset)))
            << "step " << step;
        break;
      }
      case 5: {  // materialize on a random device (launch-prepare)
        auto it = random_live();
        const bool first = rng.chance(0.5);
        auto prep = mm.prepare_launch(ctx, first ? g1 : g2, first ? slot1 : slot2,
                                      {sim::KernelArg::dev(it->first)});
        // Tiny devices: WouldBlock is legal; Ready must translate.
        if (prep.outcome == MemoryManager::PrepareOutcome::Ready) {
          ASSERT_EQ(prep.translated.size(), 1u);
        } else {
          ASSERT_EQ(prep.outcome, MemoryManager::PrepareOutcome::WouldBlock);
        }
        break;
      }
      case 6: {  // device-to-device copy within the context
        auto a = random_live();
        auto b = random_live();
        const u64 n = std::min(a->second.bytes.size(), b->second.bytes.size());
        const u64 count = rng.below(n) + 1;
        ASSERT_EQ(mm.on_copy_d2d(ctx, b->first, a->first, count), Status::Ok);
        std::copy(a->second.bytes.begin(), a->second.bytes.begin() + static_cast<long>(count),
                  b->second.bytes.begin());
        break;
      }
      case 7: {  // swap everything out
        ASSERT_EQ(mm.swap_context(ctx), Status::Ok);
        break;
      }
      case 8: {  // checkpoint (sync, keep residency)
        ASSERT_EQ(mm.checkpoint(ctx), Status::Ok);
        break;
      }
      case 9: {  // free
        auto it = random_live();
        ASSERT_EQ(mm.on_free(ctx, it->first), Status::Ok);
        model.erase(it);
        break;
      }
      default:
        break;
    }
  }
  // Final full verification.
  for (const auto& [vptr, ref] : model) {
    std::vector<std::byte> out(ref.bytes.size());
    ASSERT_EQ(mm.on_copy_d2h(ctx, out, vptr, out.size()), Status::Ok);
    EXPECT_EQ(out, ref.bytes);
  }
  rt.destroy_client(slot1);
  rt.destroy_client(slot2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MmFuzz, ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace gpuvm::core
