// Two coverage suites:
//  1. In-kernel-malloc pinning: the paper excludes applications that
//     allocate device memory inside kernels from sharing and dynamic
//     scheduling (section 1). Kernels carry a PTX-detection stand-in flag;
//     launching one pins the context to its vGPU and exempts it from
//     inter-application swap.
//  2. Model-based fuzz of the memory manager: a random operation stream
//     (copies, launches, swaps, checkpoints, device loss) is mirrored
//     against a trivial host-side reference model; observable bytes must
//     match at every read.
#include <gtest/gtest.h>

#include <map>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "core/frontend.hpp"
#include "core/memory_manager.hpp"
#include "core/runtime.hpp"
#include "sim/machine.hpp"

namespace gpuvm::core {
namespace {

// ---- 1. Pinning -------------------------------------------------------------

class PinningTest : public ::testing::Test {
 protected:
  PinningTest() : guard_(dom_), machine_(dom_, sim::SimParams{1}) {
    machine_.add_gpu(sim::test_gpu(1 << 20));
    rt_ = std::make_unique<cudart::CudaRt>(machine_, cudart::CudaRtConfig{4 * 1024, 8});

    sim::KernelDef dyn;
    dyn.name = "dynamic_alloc_kernel";
    dyn.uses_device_malloc = true;  // PTX detection stand-in
    dyn.body = [](sim::KernelExecContext&) { return Status::Ok; };
    dyn.cost = sim::per_thread_cost(1.0, 0.0);
    machine_.kernels().add(dyn);

    sim::KernelDef plain;
    plain.name = "plain_kernel";
    plain.body = [](sim::KernelExecContext&) { return Status::Ok; };
    plain.cost = sim::per_thread_cost(1.0, 0.0);
    machine_.kernels().add(plain);
  }

  vt::Domain dom_;
  vt::AttachGuard guard_;
  sim::SimMachine machine_;
  std::unique_ptr<cudart::CudaRt> rt_;
};

TEST_F(PinningTest, DeviceMallocKernelPinsContext) {
  RuntimeConfig config;
  config.scheduler.vgpus_per_device = 2;
  Runtime runtime(*rt_, config);

  FrontendApi pinned(runtime.connect());
  ASSERT_EQ(pinned.register_kernels({"dynamic_alloc_kernel"}), Status::Ok);
  auto buf = pinned.malloc(600 * 1024);  // most of the 1 MiB device
  ASSERT_TRUE(buf.has_value());
  std::vector<std::byte> data(600 * 1024, std::byte{1});
  ASSERT_EQ(pinned.memcpy_h2d(buf.value(), data), Status::Ok);
  ASSERT_EQ(pinned.launch("dynamic_alloc_kernel", {{1, 1, 1}, {32, 1, 1}},
                          {sim::KernelArg::dev(buf.value())}),
            Status::Ok);

  // A second app needing the memory cannot evict the pinned context even
  // though it idles in a CPU phase: its launch must fail after retries
  // rather than break the pinned app's residency.
  FrontendApi other(runtime.connect());
  ASSERT_EQ(other.register_kernels({"plain_kernel"}), Status::Ok);
  auto big = other.malloc(700 * 1024);
  ASSERT_TRUE(big.has_value());
  // The pinned context stays resident: victim_candidates excludes it.
  EXPECT_EQ(runtime.memory().victim_candidates(machine_.all_gpus()[0], 1, ContextId{999}).size(),
            1u);  // listed by the memory manager...
  // ...but the runtime refuses to evict it; verify its residency survives a
  // contending launch attempt running into backoff. (Launch of `other`
  // would block forever, so instead check the eviction predicate directly.)
  EXPECT_GT(runtime.memory().resident_bytes(ContextId{1}, machine_.all_gpus()[0]), 0u);
}

TEST_F(PinningTest, PinnedContextKeepsItsVgpu) {
  RuntimeConfig config;
  config.scheduler.vgpus_per_device = 1;
  config.scheduler.enable_migration = true;
  Runtime runtime(*rt_, config);

  FrontendApi api(runtime.connect());
  ASSERT_EQ(api.register_kernels({"dynamic_alloc_kernel"}), Status::Ok);
  auto buf = api.malloc(1024);
  ASSERT_TRUE(buf.has_value());
  ASSERT_EQ(api.launch("dynamic_alloc_kernel", {{1, 1, 1}, {32, 1, 1}},
                       {sim::KernelArg::dev(buf.value())}),
            Status::Ok);
  // Pinned: binding held even though a faster GPU could appear.
  EXPECT_TRUE(runtime.scheduler().context_bound(ContextId{1}));
  auto fast = sim::test_gpu(1 << 20);
  fast.effective_gflops = 1000.0;
  machine_.add_gpu(fast);
  dom_.sleep_for(vt::from_millis(1));
  EXPECT_TRUE(runtime.scheduler().context_bound(ContextId{1}));
}

// ---- 2. Model-based fuzz ------------------------------------------------------

struct RefBuffer {
  std::vector<std::byte> bytes;
};

void run_mm_fuzz(u64 seed, const MemoryManager::Config& cfg) {
  vt::Domain dom;
  vt::AttachGuard guard(dom);
  sim::SimMachine machine(dom, sim::SimParams{1});
  const GpuId g1 = machine.add_gpu(sim::test_gpu(256 * 1024));
  const GpuId g2 = machine.add_gpu(sim::test_gpu(256 * 1024));
  cudart::CudaRt rt(machine, cudart::CudaRtConfig{4 * 1024, 8});
  MemoryManager mm(rt, cfg);

  // Healthy devices the fuzz can target; device loss removes entries and
  // hot-add appends fresh ones (the chaos-extension of the fuzz).
  struct Device {
    GpuId gpu{};
    ClientId client{};
  };
  std::vector<Device> devices;
  const auto install_client = [&](GpuId gpu, int index) {
    const ClientId client = rt.create_client();
    (void)rt.set_device(client, index);
    devices.push_back({gpu, client});
  };
  install_client(g1, 0);
  install_client(g2, 1);

  const ContextId ctx{1};
  mm.add_context(ctx);

  Rng rng(seed);
  std::map<VirtualPtr, RefBuffer> model;

  const auto random_live = [&]() {
    auto it = model.begin();
    std::advance(it, static_cast<long>(rng.below(model.size())));
    return it;
  };

  for (int step = 0; step < 600; ++step) {
    const u64 op = rng.below(15);
    if (model.empty() || op == 0) {
      if (model.size() >= 8) continue;
      const u64 size = rng.below(24 * 1024) + 64;
      auto p = mm.on_malloc(ctx, size);
      ASSERT_TRUE(p.has_value());
      model.emplace(p.value(), RefBuffer{std::vector<std::byte>(size, std::byte{0})});
      // Note: real swap starts zeroed too (vector value-initialization).
      continue;
    }
    switch (op) {
      case 1: case 2: {  // host write (partial, random offset)
        auto it = random_live();
        const u64 size = it->second.bytes.size();
        const u64 offset = rng.below(size);
        const u64 count = rng.below(size - offset) + 1;
        std::vector<std::byte> data(count);
        for (auto& b : data) b = static_cast<std::byte>(rng.below(256));
        ASSERT_EQ(mm.on_copy_h2d(ctx, it->first + offset, data, std::nullopt), Status::Ok);
        std::copy(data.begin(), data.end(), it->second.bytes.begin() + static_cast<long>(offset));
        break;
      }
      case 3: case 4: {  // read back and compare (the oracle)
        auto it = random_live();
        const u64 size = it->second.bytes.size();
        const u64 offset = rng.below(size);
        const u64 count = rng.below(size - offset) + 1;
        std::vector<std::byte> out(count);
        ASSERT_EQ(mm.on_copy_d2h(ctx, out, it->first + offset, count), Status::Ok);
        ASSERT_TRUE(std::equal(out.begin(), out.end(),
                               it->second.bytes.begin() + static_cast<long>(offset)))
            << "step " << step;
        break;
      }
      case 5: {  // materialize on a random healthy device (launch-prepare)
        auto it = random_live();
        const Device& dev = devices[rng.below(devices.size())];
        auto prep = mm.prepare_launch(ctx, dev.gpu, dev.client,
                                      {sim::KernelArg::dev(it->first)});
        // Tiny devices: WouldBlock is legal; Ready must translate.
        if (prep.outcome == MemoryManager::PrepareOutcome::Ready) {
          ASSERT_EQ(prep.translated.size(), 1u);
        } else {
          ASSERT_EQ(prep.outcome, MemoryManager::PrepareOutcome::WouldBlock);
        }
        break;
      }
      case 6: {  // device-to-device copy within the context
        auto a = random_live();
        auto b = random_live();
        const u64 n = std::min(a->second.bytes.size(), b->second.bytes.size());
        const u64 count = rng.below(n) + 1;
        ASSERT_EQ(mm.on_copy_d2d(ctx, b->first, a->first, count), Status::Ok);
        std::copy(a->second.bytes.begin(), a->second.bytes.begin() + static_cast<long>(count),
                  b->second.bytes.begin());
        break;
      }
      case 7: {  // swap everything out
        ASSERT_EQ(mm.swap_context(ctx), Status::Ok);
        break;
      }
      case 8: {  // checkpoint (sync, keep residency)
        ASSERT_EQ(mm.checkpoint(ctx), Status::Ok);
        break;
      }
      case 9: {  // free
        auto it = random_live();
        ASSERT_EQ(mm.on_free(ctx, it->first), Status::Ok);
        model.erase(it);
        break;
      }
      case 10: {  // device loss (chaos): checkpoint-then-fail discipline
        if (devices.size() < 2) break;  // keep at least one device
        // The runtime auto-checkpoints after kernels, so a device loss only
        // ever discards data that swap already holds; mirror that here --
        // the reference model is unchanged by the loss.
        ASSERT_EQ(mm.checkpoint(ctx), Status::Ok);
        const size_t victim = rng.below(devices.size());
        ASSERT_EQ(machine.fail_gpu(devices[victim].gpu), Status::Ok);
        mm.on_device_lost(ctx, devices[victim].gpu);
        rt.destroy_client(devices[victim].client);
        devices.erase(devices.begin() + static_cast<long>(victim));
        break;
      }
      case 11: {  // hot-add a replacement device (chaos)
        if (devices.size() >= 4) break;
        const GpuId fresh = machine.add_gpu(sim::test_gpu(256 * 1024));
        install_client(fresh, rt.get_device_count() - 1);
        break;
      }
      case 12: {  // annotated kernel: dev_out write-set + read-only argument
        auto wr = random_live();
        auto ro = random_live();
        const Device& dev = devices[rng.below(devices.size())];
        auto prep = mm.prepare_launch(ctx, dev.gpu, dev.client,
                                      {sim::KernelArg::dev_out(wr->first),
                                       sim::KernelArg::dev(ro->first)});
        if (prep.outcome != MemoryManager::PrepareOutcome::Ready) {
          ASSERT_EQ(prep.outcome, MemoryManager::PrepareOutcome::WouldBlock);
          break;
        }
        ASSERT_EQ(prep.translated.size(), 2u);
        // "Run the kernel": poke a random sub-range of the written argument
        // directly on the device. The dev_out annotation marked the whole
        // entry device-dirty, so the write must survive any later eviction;
        // the read-only argument's model bytes must stay intact even though
        // its writeback is skipped.
        const u64 size = wr->second.bytes.size();
        const u64 offset = rng.below(size);
        const u64 count = rng.below(size - offset) + 1;
        std::vector<std::byte> data(count);
        for (auto& b : data) b = static_cast<std::byte>(rng.below(256));
        ASSERT_EQ(machine.gpu(dev.gpu)->poke(prep.translated[0].as_ptr() + offset, data),
                  Status::Ok);
        std::copy(data.begin(), data.end(),
                  wr->second.bytes.begin() + static_cast<long>(offset));
        break;
      }
      case 13: {  // page-hinted read-only launch (paged engine: demand faults)
        auto it = random_live();
        const Device& dev = devices[rng.below(devices.size())];
        const u64 size = it->second.bytes.size();
        const u64 offset = rng.below(size);
        const u64 len = rng.below(size - offset) + 1;
        auto prep = mm.prepare_launch(ctx, dev.gpu, dev.client,
                                      {sim::KernelArg::dev(it->first),
                                       sim::KernelArg::access_hint(0, offset, len)});
        // Under the entry-granular engine the hint is ignored; under the
        // paged engine only the hinted pages move. Either way the model is
        // untouched (read-only) and later reads must still match.
        if (prep.outcome == MemoryManager::PrepareOutcome::Ready) {
          ASSERT_EQ(prep.translated.size(), 2u);
        } else {
          ASSERT_EQ(prep.outcome, MemoryManager::PrepareOutcome::WouldBlock);
        }
        break;
      }
      case 14: {  // page-hinted write: poke only inside the declared range
        auto it = random_live();
        const Device& dev = devices[rng.below(devices.size())];
        const u64 size = it->second.bytes.size();
        const u64 offset = rng.below(size);
        const u64 len = rng.below(size - offset) + 1;
        auto prep = mm.prepare_launch(
            ctx, dev.gpu, dev.client,
            {sim::KernelArg::dev(it->first),
             sim::KernelArg::access_hint(0, offset, len, /*written=*/true)});
        if (prep.outcome != MemoryManager::PrepareOutcome::Ready) {
          ASSERT_EQ(prep.outcome, MemoryManager::PrepareOutcome::WouldBlock);
          break;
        }
        // The hint contract: the kernel's writes stay inside the declared
        // written range. The paged engine dirties exactly those pages, so
        // any leak outside would surface as a model mismatch.
        std::vector<std::byte> data(len);
        for (auto& b : data) b = static_cast<std::byte>(rng.below(256));
        ASSERT_EQ(machine.gpu(dev.gpu)->poke(prep.translated[0].as_ptr() + offset, data),
                  Status::Ok);
        std::copy(data.begin(), data.end(),
                  it->second.bytes.begin() + static_cast<long>(offset));
        break;
      }
      default:
        break;
    }
  }
  // Final full verification.
  for (const auto& [vptr, ref] : model) {
    std::vector<std::byte> out(ref.bytes.size());
    ASSERT_EQ(mm.on_copy_d2h(ctx, out, vptr, out.size()), Status::Ok);
    EXPECT_EQ(out, ref.bytes);
  }
  for (const Device& dev : devices) rt.destroy_client(dev.client);
}

class MmFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(MmFuzz, RandomOpsMatchReferenceModel) {
  run_mm_fuzz(GetParam(), MemoryManager::Config{});
}

INSTANTIATE_TEST_SUITE_P(Seeds, MmFuzz, ::testing::Values(11, 22, 33, 44, 55, 66));

// The same model-based fuzz against the page-granular engine: hinted ops
// move data at page granularity, unhinted ops take the whole-entry path,
// and the host-side oracle must still match at every read.
class MmFuzzPaged : public ::testing::TestWithParam<u64> {};

TEST_P(MmFuzzPaged, RandomOpsMatchReferenceModel) {
  MemoryManager::Config cfg;
  cfg.paging = true;
  cfg.page_bytes = 4 * 1024;
  cfg.prefetch_policy = "stride";
  run_mm_fuzz(GetParam(), cfg);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MmFuzzPaged, ::testing::Values(11, 22, 33, 44, 55, 66));

// And once more under the working-set eviction policy with sequential
// readahead -- different victim ranking and prefetch traffic, same bytes.
class MmFuzzWorkingSet : public ::testing::TestWithParam<u64> {};

TEST_P(MmFuzzWorkingSet, RandomOpsMatchReferenceModel) {
  MemoryManager::Config cfg;
  cfg.paging = true;
  cfg.page_bytes = 4 * 1024;
  cfg.eviction_policy = "working-set";
  cfg.prefetch_policy = "sequential";
  run_mm_fuzz(GetParam(), cfg);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MmFuzzWorkingSet, ::testing::Values(7, 19, 31));

// Directed companion to the fuzz's checkpoint-then-fail discipline: without
// the checkpoint, device-side writes since the last sync are genuinely lost
// and reads fall back to the stale swap copy (the documented on_device_lost
// semantics the runtime's auto-checkpoint exists to paper over).
TEST(MmDeviceLoss, UncheckpointedDeviceWritesRollBackToSwap) {
  vt::Domain dom;
  vt::AttachGuard guard(dom);
  sim::SimMachine machine(dom, sim::SimParams{1});
  const GpuId gpu = machine.add_gpu(sim::test_gpu(256 * 1024));
  cudart::CudaRt rt(machine, cudart::CudaRtConfig{4 * 1024, 8});
  MemoryManager mm(rt);
  const ClientId client = rt.create_client();
  (void)rt.set_device(client, 0);
  const ContextId ctx{1};
  mm.add_context(ctx);

  auto vptr = mm.on_malloc(ctx, 64);
  ASSERT_TRUE(vptr.has_value());
  std::vector<std::byte> swap_copy(64, std::byte{0xAA});
  ASSERT_EQ(mm.on_copy_h2d(ctx, vptr.value(), swap_copy, std::nullopt), Status::Ok);

  // Materialize and "run a kernel": prepare marks the entry device-dirty;
  // poke stands in for the kernel's writes.
  auto prep = mm.prepare_launch(ctx, gpu, client, {sim::KernelArg::dev(vptr.value())});
  ASSERT_EQ(prep.outcome, MemoryManager::PrepareOutcome::Ready);
  std::vector<std::byte> device_writes(64, std::byte{0xBB});
  ASSERT_EQ(machine.gpu(gpu)->poke(prep.translated[0].as_ptr(), device_writes), Status::Ok);

  ASSERT_EQ(machine.fail_gpu(gpu), Status::Ok);
  mm.on_device_lost(ctx, gpu);

  std::vector<std::byte> out(64);
  ASSERT_EQ(mm.on_copy_d2h(ctx, out, vptr.value(), 64), Status::Ok);
  EXPECT_EQ(out, swap_copy) << "un-checkpointed device writes must roll back to swap";
}

// ---- 3. Runtime-level chaos fuzz ---------------------------------------------
//
// Drives full application threads through the FrontendApi while transport
// drops messages (low-rate fault injector) and devices fail and rejoin
// under them (node-level loss: every GPU of the machine goes dark, then
// replacements arrive), and live migrations pull contexts to a peer daemon
// mid-run -- one while the node is healthy, one inside the dark window
// (device loss interleaved with the pre-copy). The host-side mirror is the
// oracle: any tenant whose calls all returned Ok must read back exactly the
// mirrored bytes, migrated or not.
class RuntimeChaosFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(RuntimeChaosFuzz, LossyTransportNodeLossAndMigrationMatchReferenceModel) {
  const u64 seed = GetParam();
  vt::Domain dom;
  vt::AttachGuard guard(dom);
  sim::SimMachine machine(dom, sim::SimParams{1});
  const GpuId g1 = machine.add_gpu(sim::test_gpu(1 << 20));
  const GpuId g2 = machine.add_gpu(sim::test_gpu(1 << 20));
  cudart::CudaRt rt(machine, cudart::CudaRtConfig{4 * 1024, 8});

  // Peer daemon migrations land on: its own machine, same virtual clock,
  // same kernel binaries (as a cluster would replicate them).
  sim::SimMachine peer_machine(dom, sim::SimParams{1});
  peer_machine.add_gpu(sim::test_gpu(1 << 20));
  cudart::CudaRt peer_rt(peer_machine, cudart::CudaRtConfig{4 * 1024, 8});

  sim::KernelDef step;
  step.name = "fuzz_step";
  step.body = [](sim::KernelExecContext& ctx) {
    auto data = ctx.buffer<u32>(0);
    const u32 arg = static_cast<u32>(ctx.scalar_i64(1));
    for (u32& x : data) x = x * 2654435761u + arg;
    return Status::Ok;
  };
  step.cost = sim::per_thread_cost(2000.0, 128.0);
  machine.kernels().add(step);
  peer_machine.kernels().add(step);

  RuntimeConfig config;
  config.scheduler.vgpus_per_device = 2;
  config.max_recovery_attempts = 6;
  config.scheduler.device_wait_grace_seconds = 0.25;  // survive the dark window
  config.auto_checkpoint_after_kernel_seconds = 1e-9;
  Runtime runtime(rt, config);
  Runtime peer_runtime(peer_rt, config);

  transport::ScopedFaultInjector injector(seed);
  injector.injector().degrade(/*drop_rate=*/0.05, vt::from_micros(20));

  constexpr int kApps = 3;
  struct AppResult {
    Status status = Status::Ok;
    bool data_ok = false;
  };
  std::vector<AppResult> results(kApps);
  {
    std::vector<vt::Thread> threads;
    dom.hold();
    for (int i = 0; i < kApps; ++i) {
      threads.emplace_back(dom, [&, i] {
        dom.sleep_for(vt::from_micros(static_cast<double>(i + 1) * 131.0));
        FrontendApi api(runtime.connect());
        AppResult& r = results[static_cast<size_t>(i)];
        if (!api.connected()) {
          r.status = Status::ErrorConnectionClosed;
          return;
        }
        Status st = api.register_kernels({"fuzz_step"});
        const u64 elems = 32 + 8 * static_cast<u64>(i);
        VirtualPtr ptr = kNullVirtualPtr;
        std::vector<u32> mirror(elems);
        if (st == Status::Ok) {
          auto alloc = api.malloc(elems * sizeof(u32));
          if (alloc.has_value()) ptr = alloc.value();
          st = alloc.status();
        }
        if (st == Status::Ok) {
          Rng data_rng(seed ^ static_cast<u64>(i * 7919 + 1));
          for (u32& x : mirror) x = static_cast<u32>(data_rng());
          st = api.memcpy_h2d(ptr, std::as_bytes(std::span(mirror)));
        }
        for (int k = 0; st == Status::Ok && k < 12; ++k) {
          const u32 arg = static_cast<u32>(k + 1) * 17u + static_cast<u32>(i);
          st = api.launch("fuzz_step", {{1, 1, 1}, {static_cast<u32>(elems), 1, 1}},
                          {sim::KernelArg::dev(ptr), sim::KernelArg::i64v(arg)});
          if (st == Status::Ok) {
            for (u32& x : mirror) x = x * 2654435761u + arg;
            dom.sleep_for(vt::from_micros(60.0));
          }
        }
        if (st == Status::Ok) {
          std::vector<u32> back(elems);
          st = api.memcpy_d2h(std::as_writable_bytes(std::span(back)), ptr,
                              elems * sizeof(u32));
          if (st == Status::Ok) r.data_ok = (back == mirror);
        }
        r.status = st;
      });
    }
    // Chaos driver: node-level loss -- both devices fail mid-run -- then two
    // replacements rejoin inside the grace window.
    threads.emplace_back(dom, [&] {
      dom.sleep_for(vt::from_micros(800));
      (void)machine.fail_gpu(g1);
      dom.sleep_for(vt::from_micros(400));
      (void)machine.fail_gpu(g2);  // node fully dark
      dom.sleep_for(vt::from_millis(2));
      machine.add_gpu(sim::test_gpu(1 << 20));
      machine.add_gpu(sim::test_gpu(1 << 20));
    });
    // Migration driver: the `migrate` chaos op. One pull while the node is
    // healthy, one launched inside the dark window so device loss and
    // pre-copy interleave. Refusals (busy context, quiesce timeout) are
    // legal outcomes -- the job then simply keeps running at home; what may
    // never happen is a lost or duplicated write, which the per-app mirror
    // comparison below catches.
    const auto peer_factory = [&] {
      return peer_runtime.connect_with(transport::ChannelCosts::cluster_link());
    };
    threads.emplace_back(dom, [&] {
      dom.sleep_for(vt::from_micros(600));
      (void)runtime.migrate_context(ContextId{2}, peer_factory);
      dom.sleep_for(vt::from_micros(900));  // t=1.5ms: node fully dark
      (void)runtime.migrate_context(ContextId{3}, peer_factory);
    });
    dom.unhold();
  }
  runtime.drain();
  peer_runtime.drain();

  for (int i = 0; i < kApps; ++i) {
    const AppResult& r = results[static_cast<size_t>(i)];
    if (r.status == Status::Ok) {
      EXPECT_TRUE(r.data_ok) << "app " << i << " (seed " << seed
                             << "): Ok status but data diverged from the reference model";
    }
    // Non-Ok is acceptable under chaos -- but it must be a *surfaced*
    // Status, which reaching this point proves (no hang, no crash).
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuntimeChaosFuzz, ::testing::Values(3, 17, 29, 71, 113));

}  // namespace
}  // namespace gpuvm::core
