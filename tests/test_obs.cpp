// Tests for the observability layer (src/obs): trace recorder thread
// safety under vt threads, histogram bucket semantics, Chrome-JSON
// well-formedness, the QueryStats wire round-trip, and the guarantee that
// instrumentation with tracing disabled never allocates.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "common/vt.hpp"
#include "common/wire.hpp"
#include "core/frontend.hpp"
#include "core/runtime.hpp"
#include "cudart/cudart.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/machine.hpp"

// ---- allocation counting (for the disabled-path test) ----------------------
// Replacement global operator new that counts allocations while armed. The
// disabled trace path promises "one relaxed load and a branch" -- zero
// allocations -- and this is the only way to actually check that.

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::size_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(n ? n : 1);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}
void* operator new[](std::size_t n) { return operator new(n); }
// The nothrow forms must be replaced too: libstdc++'s get_temporary_buffer
// (used by std::stable_sort) allocates through operator new(nothrow), and a
// partial replacement would pair the library's allocator with our free-based
// operator delete -- an alloc/dealloc mismatch under ASan.
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return operator new(n, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace gpuvm {
namespace {

// ---- TraceRecorder ---------------------------------------------------------

TEST(TraceRecorder, ConcurrentRecordingFromVtThreads) {
  vt::Domain dom;
  obs::TraceRecorder rec(dom);
  constexpr int kThreads = 8;
  constexpr int kEach = 400;
  {
    std::vector<vt::Thread> threads;
    {
      vt::HoldGuard hold(dom);  // common virtual start for the batch
      for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back(dom, [&, t] {
          for (int i = 0; i < kEach; ++i) {
            const vt::TimePoint start = dom.now();
            dom.sleep_for(vt::from_micros(10));
            rec.span("work", "test", obs::kRuntimePid, static_cast<u64>(t), start,
                     dom.now() - start, static_cast<u64>(t));
          }
        });
      }
    }
  }  // joins
  EXPECT_EQ(rec.size(), static_cast<size_t>(kThreads * kEach));
  EXPECT_EQ(rec.dropped(), 0u);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), static_cast<size_t>(kThreads * kEach));
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_ns, events[i].ts_ns) << "events() must be sorted by timestamp";
  }
  for (const auto& ev : events) {
    EXPECT_STREQ(ev.name, "work");
    EXPECT_GT(ev.dur_ns, 0);
  }
}

TEST(TraceRecorder, CapacityTurnsOverflowIntoCountedDrops) {
  vt::Domain dom;
  // Capacity is clamped up to one chunk (4096 events); record past that.
  obs::TraceRecorder rec(dom, /*capacity=*/1);
  constexpr size_t kTotal = 10000;
  obs::TraceEvent ev;
  ev.set_name("e");
  ev.set_cat("test");
  for (size_t i = 0; i < kTotal; ++i) {
    ev.ts_ns = static_cast<i64>(i);
    ev.dur_ns = 1;
    rec.record(ev);
  }
  EXPECT_LE(rec.size(), 4096u);
  EXPECT_GT(rec.dropped(), 0u);
  EXPECT_EQ(rec.size() + rec.dropped(), kTotal);
}

TEST(TraceRecorder, TruncatesOverlongNames) {
  vt::Domain dom;
  obs::TraceRecorder rec(dom);
  const std::string long_name(200, 'x');
  rec.span(long_name, "test", 0, 0, vt::kTimeZero, vt::from_micros(1));
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].name).size(), sizeof(events[0].name) - 1);
}

// ---- Chrome JSON export ----------------------------------------------------

// Minimal JSON syntax checker (objects, arrays, strings, numbers,
// true/false/null). Enough to prove the export is loadable: Perfetto's
// importer starts with exactly this grammar.
class JsonScanner {
 public:
  explicit JsonScanner(const std::string& text) : p_(text.data()), end_(text.data() + text.size()) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return p_ == end_;
  }

 private:
  void skip_ws() {
    while (p_ < end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) ++p_;
  }

  bool literal(const char* word) {
    const size_t len = std::strlen(word);
    if (static_cast<size_t>(end_ - p_) < len || std::strncmp(p_, word, len) != 0) return false;
    p_ += len;
    return true;
  }

  bool string() {
    if (p_ >= end_ || *p_ != '"') return false;
    ++p_;
    while (p_ < end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ >= end_) return false;
      }
      ++p_;
    }
    if (p_ >= end_) return false;
    ++p_;  // closing quote
    return true;
  }

  bool number() {
    const char* start = p_;
    if (p_ < end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    bool digits = false;
    while (p_ < end_ && (std::isdigit(static_cast<unsigned char>(*p_)) || *p_ == '.' ||
                         *p_ == 'e' || *p_ == 'E' || *p_ == '-' || *p_ == '+')) {
      digits = digits || std::isdigit(static_cast<unsigned char>(*p_));
      ++p_;
    }
    return digits && p_ != start;
  }

  bool members(char close, bool with_keys) {
    skip_ws();
    if (p_ < end_ && *p_ == close) {
      ++p_;
      return true;
    }
    while (true) {
      skip_ws();
      if (with_keys) {
        if (!string()) return false;
        skip_ws();
        if (p_ >= end_ || *p_ != ':') return false;
        ++p_;
        skip_ws();
      }
      if (!value()) return false;
      skip_ws();
      if (p_ < end_ && *p_ == ',') {
        ++p_;
        continue;
      }
      if (p_ < end_ && *p_ == close) {
        ++p_;
        return true;
      }
      return false;
    }
  }

  bool value() {
    if (p_ >= end_) return false;
    switch (*p_) {
      case '{': ++p_; return members('}', true);
      case '[': ++p_; return members(']', false);
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  const char* p_;
  const char* end_;
};

TEST(TraceRecorder, ExportsWellFormedChromeJson) {
  vt::Domain dom;
  obs::TraceRecorder rec(dom);
  rec.set_process_name(obs::kRuntimePid, "gpuvm runtime");
  rec.set_process_name(1, "GPU 1 (\"quoted\" \\ model)");  // must be escaped
  rec.set_thread_name(1, obs::kComputeEngineTid, "compute engine");
  rec.span("kernel\nwith\tcontrol", "kernel", 1, obs::kComputeEngineTid, vt::from_micros(5),
           vt::from_micros(10), 7, 4096);
  rec.span("queue-wait", "sched", obs::kRuntimePid, 7, vt::kTimeZero, vt::from_micros(5), 7);
  rec.instant("bind", "sched", obs::kRuntimePid, 7, 7);

  const std::string json = rec.export_chrome_json();
  EXPECT_TRUE(JsonScanner(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // complete spans
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instants
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // track metadata
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("queue-wait"), std::string::npos);
  // Control characters and quotes in names must come out escaped.
  EXPECT_EQ(json.find("kernel\nwith"), std::string::npos);
  EXPECT_NE(json.find("kernel\\nwith\\tcontrol"), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\" \\\\ model"), std::string::npos);
}

// ---- Histogram -------------------------------------------------------------

TEST(Histogram, BucketEdgesAreInclusiveUpperBounds) {
  obs::Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // bucket 0
  h.observe(1.0);    // bucket 0 (inclusive edge)
  h.observe(1.001);  // bucket 1
  h.observe(10.0);   // bucket 1
  h.observe(100.0);  // bucket 2
  h.observe(101.0);  // overflow
  h.observe(1e12);   // overflow
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 edges + overflow
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 2u);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.001 + 10.0 + 100.0 + 101.0 + 1e12, 1.0);
}

TEST(Histogram, DefaultEdgesAreSortedAscending) {
  for (auto edges : {obs::default_seconds_edges(), obs::default_bytes_edges()}) {
    ASSERT_FALSE(edges.empty());
    for (size_t i = 1; i < edges.size(); ++i) EXPECT_LT(edges[i - 1], edges[i]);
  }
}

TEST(Registry, ResetKeepsHandlesValid) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("c");
  obs::Histogram& h = reg.histogram("h", obs::default_seconds_edges());
  c.add(3);
  h.observe(0.5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  c.add(1);  // handle still live after reset
  EXPECT_EQ(reg.snapshot().counter_value("c"), 1u);
}

// ---- Snapshot wire round-trip ----------------------------------------------

TEST(Snapshot, EncodeDecodeRoundTrip) {
  obs::MetricsRegistry reg;
  reg.counter("a.count").add(42);
  reg.gauge("b.gauge").set(2.5);
  obs::Histogram& h = reg.histogram("c.hist", obs::default_seconds_edges());
  h.observe(0.002);
  h.observe(5.0);
  const obs::MetricsSnapshot snap = reg.snapshot();

  WireWriter w;
  snap.encode(w);
  WireReader r(w.bytes());
  const auto decoded = obs::MetricsSnapshot::decode(r);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->values.size(), snap.values.size());
  EXPECT_EQ(decoded->counter_value("a.count"), 42u);
  EXPECT_DOUBLE_EQ(decoded->gauge_value("b.gauge"), 2.5);
  const obs::MetricValue* hist = decoded->find("c.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->kind, obs::MetricKind::Histogram);
  EXPECT_EQ(hist->count, 2u);
  EXPECT_DOUBLE_EQ(hist->sum, 5.002);
  EXPECT_EQ(hist->edges.size(), obs::default_seconds_edges().size());
  u64 total = 0;
  for (u64 b : hist->buckets) total += b;
  EXPECT_EQ(total, 2u);
}

// ---- QueryStats over the wire protocol --------------------------------------

TEST(QueryStats, DaemonSnapshotAgreesWithRuntimeStats) {
  obs::metrics().reset();  // the registry is process-global; isolate this test
  vt::Domain dom;
  vt::AttachGuard guard(dom);
  sim::SimMachine machine(dom, sim::SimParams{1});
  machine.add_gpu(sim::test_gpu(8 << 20));

  sim::KernelDef addone;
  addone.name = "t_addone";
  addone.body = [](sim::KernelExecContext& kc) {
    for (auto& v : kc.buffer<float>(0)) v += 1.0f;
    return Status::Ok;
  };
  addone.cost = sim::per_thread_cost(1.0, 4.0);
  machine.kernels().add(addone);

  auto rt = std::make_unique<cudart::CudaRt>(machine, cudart::CudaRtConfig{4 * 1024, 8});
  auto runtime = std::make_unique<core::Runtime>(*rt);

  {
    core::FrontendApi api(runtime->connect());
    ASSERT_TRUE(api.connected());
    ASSERT_EQ(api.register_kernels({"t_addone"}), Status::Ok);
    auto buf = api.malloc(32 * sizeof(float));
    ASSERT_TRUE(buf);
    std::vector<float> data(32, 1.0f);
    ASSERT_EQ(api.copy_in(buf.value(), data), Status::Ok);
    ASSERT_EQ(api.launch("t_addone", {{1, 1, 1}, {32, 1, 1}}, {sim::KernelArg::dev(buf.value())}),
              Status::Ok);
    ASSERT_EQ(api.free(buf.value()), Status::Ok);
  }

  core::FrontendApi api(runtime->connect());
  ASSERT_TRUE(api.connected());
  auto snap = api.query_stats();
  ASSERT_TRUE(snap) << to_string(snap.status());
  const obs::MetricsSnapshot& s = snap.value();

  // The daemon publishes its stats structs right before snapshotting, so
  // the wire copy must agree with the in-process Runtime::stats().
  const core::RuntimeStats stats = runtime->stats();
  EXPECT_EQ(s.gauge_value("stats.runtime.launches"), static_cast<double>(stats.launches));
  EXPECT_EQ(s.gauge_value("stats.runtime.connections"), static_cast<double>(stats.connections));
  EXPECT_GE(s.gauge_value("stats.sched.binds"), 1.0);
  EXPECT_GE(s.counter_value("cudart.calls"), 1u);
  const obs::MetricValue* wait = s.find("sched.queue_wait_seconds");
  ASSERT_NE(wait, nullptr);
  EXPECT_GE(wait->count, 1u);
  EXPECT_FALSE(s.to_text().empty());
}

// ---- Disabled-path guarantees ----------------------------------------------

TEST(DisabledPath, SpanScopeAndCachedHandlesDoNotAllocate) {
  ASSERT_EQ(obs::tracer(), nullptr) << "tracing must be off for this test";
  obs::Counter& counter = obs::metrics().counter("test.disabled_path");      // cached handle,
  obs::Histogram& hist =                                                     // taken before
      obs::metrics().histogram("test.disabled_hist", obs::default_seconds_edges());  // arming

  g_allocs.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    obs::SpanScope span("kernel", "cat", 1, obs::kComputeEngineTid, 7, 4096);
    span.set_bytes(8192);
    span.set_track(2, obs::kCopyEngineTid);
    counter.add(1);
    hist.observe(0.001 * i);
  }
  g_count_allocs.store(false, std::memory_order_relaxed);
  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed), 0u)
      << "instrumentation with tracing disabled must not allocate";
  EXPECT_EQ(counter.value(), 1000u);
}

}  // namespace
}  // namespace gpuvm
