// Tests for the trace-driven job-stream generator (workloads/loadgen.hpp):
// arrival statistics, footprint bounds, determinism, and tenant
// order-independence.
#include "workloads/loadgen.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace gpuvm::workloads {
namespace {

LoadGenConfig base_config() {
  LoadGenConfig config;
  config.seed = 20260809;
  config.tenants = 16;
  config.horizon_seconds = 50.0;
  config.arrivals_per_second = 20.0;
  return config;
}

TEST(LoadGen, PoissonRateWithinTolerance) {
  const LoadGenConfig config = base_config();
  const std::vector<GeneratedJob> trace = generate_trace(config);
  // 16 tenants x 20/s x 50s = 16000 expected; Poisson sd = sqrt(16000) = 126.
  // 5 sd is a one-in-3.5M flake under the fixed seed (i.e. never: the draw
  // is deterministic -- the bound documents how much slack the check has).
  const double expected = config.tenants * config.arrivals_per_second * config.horizon_seconds;
  EXPECT_NEAR(static_cast<double>(trace.size()), expected, 5.0 * std::sqrt(expected));
}

TEST(LoadGen, ArrivalsWithinHorizonAndSorted) {
  const std::vector<GeneratedJob> trace = generate_trace(base_config());
  ASSERT_FALSE(trace.empty());
  for (const GeneratedJob& job : trace) {
    EXPECT_GT(job.arrival_seconds, 0.0);
    EXPECT_LT(job.arrival_seconds, 50.0);
  }
  EXPECT_TRUE(std::is_sorted(trace.begin(), trace.end(),
                             [](const GeneratedJob& a, const GeneratedJob& b) {
                               return a.arrival_seconds < b.arrival_seconds;
                             }));
}

TEST(LoadGen, FootprintsRespectParetoBoundsAndSkewSmall) {
  const LoadGenConfig config = base_config();
  const std::vector<GeneratedJob> trace = generate_trace(config);
  u64 below_double_min = 0;
  for (const GeneratedJob& job : trace) {
    EXPECT_GE(job.footprint_bytes, config.footprint_min_bytes);
    EXPECT_LE(job.footprint_bytes, config.footprint_max_bytes);
    if (job.footprint_bytes < 2 * config.footprint_min_bytes) ++below_double_min;
  }
  // Heavy tail means *most* jobs are near the minimum: for alpha=1.5 the
  // mass below 2x the floor is 1 - 2^-1.5 ~ 65%.
  EXPECT_GT(below_double_min, trace.size() / 2);
}

TEST(LoadGen, ServiceTimesPositiveWithPerByteTerm) {
  LoadGenConfig config = base_config();
  config.service_seconds_per_byte = 1e-9;
  for (const GeneratedJob& job : generate_trace(config)) {
    EXPECT_GE(job.service_seconds,
              1e-9 * static_cast<double>(job.footprint_bytes));
  }
}

TEST(LoadGen, DeterministicAcrossCalls) {
  const LoadGenConfig config = base_config();
  const std::vector<GeneratedJob> a = generate_trace(config);
  const std::vector<GeneratedJob> b = generate_trace(config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tenant, b[i].tenant);
    EXPECT_EQ(a[i].arrival_seconds, b[i].arrival_seconds);
    EXPECT_EQ(a[i].footprint_bytes, b[i].footprint_bytes);
    EXPECT_EQ(a[i].service_seconds, b[i].service_seconds);
  }
}

TEST(LoadGen, TenantStreamsIndependentOfTenantCount) {
  // Tenant 3's jobs must be bit-identical whether the config has 4 tenants
  // or 64 -- each stream is seeded by (seed, tenant) alone. This is what
  // lets bench drivers generate per-tenant traces in any order or in
  // parallel and still agree.
  LoadGenConfig small = base_config();
  small.tenants = 4;
  LoadGenConfig big = base_config();
  big.tenants = 64;
  const std::vector<GeneratedJob> a = generate_tenant_jobs(small, 3);
  const std::vector<GeneratedJob> b = generate_tenant_jobs(big, 3);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_seconds, b[i].arrival_seconds);
    EXPECT_EQ(a[i].footprint_bytes, b[i].footprint_bytes);
    EXPECT_EQ(a[i].service_seconds, b[i].service_seconds);
  }
}

TEST(LoadGen, AdjacentTenantsAreDecorrelated) {
  const LoadGenConfig config = base_config();
  const std::vector<GeneratedJob> t0 = generate_tenant_jobs(config, 0);
  const std::vector<GeneratedJob> t1 = generate_tenant_jobs(config, 1);
  ASSERT_FALSE(t0.empty());
  ASSERT_FALSE(t1.empty());
  EXPECT_NE(t0.front().arrival_seconds, t1.front().arrival_seconds);
  EXPECT_NE(t0.front().footprint_bytes, t1.front().footprint_bytes);
}

TEST(LoadGen, DiurnalModulationShiftsArrivalMass) {
  // lambda(t) = base * (1 + amp*sin(2*pi*t/T)) with T = horizon puts the
  // positive half-wave in the first half of the window: substantially more
  // arrivals land there than in the second half.
  LoadGenConfig config = base_config();
  config.tenants = 32;
  config.diurnal_amplitude = 0.8;
  config.diurnal_period_seconds = config.horizon_seconds;
  const std::vector<GeneratedJob> trace = generate_trace(config);
  u64 first_half = 0;
  for (const GeneratedJob& job : trace) {
    if (job.arrival_seconds < config.horizon_seconds / 2.0) ++first_half;
  }
  const u64 second_half = trace.size() - first_half;
  // Expected ratio is (1 + 2*amp/pi) / (1 - 2*amp/pi) ~ 3.1 at amp=0.8;
  // require a comfortable 2x.
  EXPECT_GT(first_half, 2 * second_half);
}

TEST(LoadGen, DiurnalKeepsMeanRateRoughly) {
  // Thinning modulates the shape, not the total mass (sin integrates to 0
  // over full periods).
  LoadGenConfig config = base_config();
  config.diurnal_amplitude = 0.5;
  config.diurnal_period_seconds = config.horizon_seconds / 5.0;
  const std::vector<GeneratedJob> trace = generate_trace(config);
  const double expected = config.tenants * config.arrivals_per_second * config.horizon_seconds;
  EXPECT_NEAR(static_cast<double>(trace.size()), expected, 5.0 * std::sqrt(expected));
}

TEST(LoadGen, MaxJobsYieldsPrefixOfUncappedTrace) {
  LoadGenConfig config = base_config();
  const std::vector<GeneratedJob> full = generate_trace(config);
  ASSERT_GT(full.size(), 100u);
  config.max_jobs = 100;
  const std::vector<GeneratedJob> capped = generate_trace(config);
  ASSERT_EQ(capped.size(), 100u);
  for (size_t i = 0; i < capped.size(); ++i) {
    EXPECT_EQ(capped[i].tenant, full[i].tenant);
    EXPECT_EQ(capped[i].arrival_seconds, full[i].arrival_seconds);
  }
}

TEST(LoadGen, PerTenantIndicesAreSequential) {
  const std::vector<GeneratedJob> jobs = generate_tenant_jobs(base_config(), 7);
  for (size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].tenant, 7);
    EXPECT_EQ(jobs[i].index_in_tenant, i);
  }
}

}  // namespace
}  // namespace gpuvm::workloads
