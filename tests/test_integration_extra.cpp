// Cross-feature integration tests: eager-transfer configuration, offload
// combined with device failure on the remote node, CUDA4 shared contexts
// under memory pressure, and checkpoint/restore across simulated nodes.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.hpp"
#include "core/checkpoint.hpp"
#include "core/frontend.hpp"
#include "core/runtime.hpp"
#include "sim/machine.hpp"

namespace gpuvm::core {
namespace {

void add_addone(sim::SimMachine& machine) {
  sim::KernelDef addone;
  addone.name = "x_addone";
  addone.body = [](sim::KernelExecContext& kc) {
    for (auto& v : kc.buffer<float>(0)) v += 1.0f;
    return Status::Ok;
  };
  addone.cost = sim::per_thread_cost(1.0, 4.0);
  machine.kernels().add(addone);
}

TEST(EagerTransfers, EndToEndCorrectUnderRebinding) {
  // Eager (non-deferred) configuration: copies go straight to the device
  // once an entry is materialized. Data must stay correct across swaps.
  vt::Domain dom;
  vt::AttachGuard guard(dom);
  sim::SimMachine machine(dom, sim::SimParams{1});
  machine.add_gpu(sim::test_gpu(256 * 1024));
  add_addone(machine);
  cudart::CudaRt rt(machine, cudart::CudaRtConfig{4 * 1024, 8});
  RuntimeConfig config;
  config.defer_transfers = false;
  Runtime runtime(rt, config);

  FrontendApi api(runtime.connect());
  ASSERT_EQ(api.register_kernels({"x_addone"}), Status::Ok);
  auto buf = api.malloc(64 * sizeof(float));
  ASSERT_TRUE(buf.has_value());
  std::vector<float> data(64, 1.0f);
  ASSERT_EQ(api.copy_in(buf.value(), data), Status::Ok);  // not bound yet: deferred
  ASSERT_EQ(api.launch("x_addone", {{1, 1, 1}, {64, 1, 1}}, {sim::KernelArg::dev(buf.value())}),
            Status::Ok);
  // Now bound and materialized: this copy takes the eager path (partial
  // write at an interior offset while the device copy is dirty).
  std::vector<float> patch(8, 100.0f);
  ASSERT_EQ(api.memcpy_h2d(buf.value() + 16 * sizeof(float), std::as_bytes(std::span(patch))),
            Status::Ok);
  ASSERT_EQ(api.launch("x_addone", {{1, 1, 1}, {64, 1, 1}}, {sim::KernelArg::dev(buf.value())}),
            Status::Ok);
  std::vector<float> out(64);
  ASSERT_EQ(api.copy_out(out, buf.value()), Status::Ok);
  for (size_t i = 0; i < 64; ++i) {
    const float want = (i >= 16 && i < 24) ? 101.0f : 3.0f;
    ASSERT_EQ(out[i], want) << i;
  }
}

TEST(OffloadResilience, RemoteGpuFailureRecoversTransparently) {
  // A job offloaded to a peer node survives the failure of one of the
  // peer's GPUs: the peer daemon replays onto its surviving device; the
  // client (and the offloading node) never notice.
  vt::Domain dom;
  vt::AttachGuard guard(dom);
  sim::SimParams params{1};
  core::RuntimeConfig config;
  config.scheduler.vgpus_per_device = 2;
  config.offload_threshold = 0;  // node-a sheds everything
  config.auto_checkpoint_after_kernel_seconds = 1e-9;
  cluster::Cluster cl(dom, params,
                      {{"node-a", {sim::test_gpu(1 << 20)}},
                       {"node-b", {sim::test_gpu(1 << 20), sim::test_gpu(1 << 20)}}},
                      config, cudart::CudaRtConfig{4 * 1024, 8});
  add_addone(cl.node(0).machine());
  add_addone(cl.node(1).machine());
  cl.enable_offloading();

  FrontendApi api(cl.node(0).runtime().connect());
  ASSERT_EQ(api.register_kernels({"x_addone"}), Status::Ok);
  auto buf = api.malloc(32 * sizeof(float));
  ASSERT_TRUE(buf.has_value());
  std::vector<float> data(32, 1.0f);
  ASSERT_EQ(api.copy_in(buf.value(), data), Status::Ok);
  const auto launch = [&] {
    return api.launch("x_addone", {{1, 1, 1}, {32, 1, 1}}, {sim::KernelArg::dev(buf.value())});
  };
  ASSERT_EQ(launch(), Status::Ok);
  EXPECT_EQ(cl.node(0).runtime().stats().offloaded_connections, 1u);
  EXPECT_EQ(cl.node(0).machine().gpu(cl.node(0).machine().all_gpus()[0])->stats().kernels_launched,
            0u);  // truly remote

  // Fail whichever of node-b's GPUs hosts the context.
  auto resident = cl.node(1).runtime().memory().residency(ContextId{1});
  ASSERT_TRUE(resident.has_value());
  ASSERT_EQ(cl.node(1).machine().fail_gpu(*resident), Status::Ok);

  ASSERT_EQ(launch(), Status::Ok);  // replayed on node-b's surviving GPU
  std::vector<float> out(32);
  ASSERT_EQ(api.copy_out(out, buf.value()), Status::Ok);
  for (float v : out) EXPECT_EQ(v, 3.0f);
}

TEST(Cuda4Pressure, SharedContextSwapsAsOneUnit) {
  // Two threads of one application share a context; another application
  // evicts it while both threads idle; both threads' data round-trips.
  vt::Domain dom;
  vt::AttachGuard guard(dom);
  sim::SimMachine machine(dom, sim::SimParams{1});
  machine.add_gpu(sim::test_gpu(512 * 1024));
  add_addone(machine);
  cudart::CudaRt rt(machine, cudart::CudaRtConfig{4 * 1024, 8});
  RuntimeConfig config;
  config.cuda4_semantics = true;
  config.scheduler.vgpus_per_device = 4;
  Runtime runtime(rt, config);

  ConnectOptions app;
  app.application_id = 5;
  FrontendApi t1(runtime.connect(), app);
  FrontendApi t2(runtime.connect(), app);
  ASSERT_EQ(t1.register_kernels({"x_addone"}), Status::Ok);
  ASSERT_EQ(t2.register_kernels({"x_addone"}), Status::Ok);
  auto b1 = t1.malloc(40 * 1024);
  auto b2 = t2.malloc(40 * 1024);
  ASSERT_TRUE(b1 && b2);
  std::vector<float> d1(10 * 1024, 1.0f);
  std::vector<float> d2(10 * 1024, 2.0f);
  ASSERT_EQ(t1.copy_in(b1.value(), d1), Status::Ok);
  ASSERT_EQ(t2.copy_in(b2.value(), d2), Status::Ok);
  ASSERT_EQ(t1.launch("x_addone", {{40, 1, 1}, {256, 1, 1}}, {sim::KernelArg::dev(b1.value())}),
            Status::Ok);

  // A hungry second application forces the shared context out.
  FrontendApi hungry(runtime.connect());
  ASSERT_EQ(hungry.register_kernels({"x_addone"}), Status::Ok);
  auto big = hungry.malloc(460 * 1024);
  ASSERT_TRUE(big.has_value());
  ASSERT_EQ(hungry.launch("x_addone", {{460, 1, 1}, {256, 1, 1}},
                          {sim::KernelArg::dev(big.value())}),
            Status::Ok);

  // Both threads of the shared app still see correct data afterwards.
  std::vector<float> o1(10 * 1024);
  std::vector<float> o2(10 * 1024);
  ASSERT_EQ(t2.copy_out(o1, b1.value()), Status::Ok);  // cross-thread read
  ASSERT_EQ(t1.copy_out(o2, b2.value()), Status::Ok);
  for (float v : o1) ASSERT_EQ(v, 2.0f);  // 1.0 + addone
  for (float v : o2) ASSERT_EQ(v, 2.0f);  // untouched 2.0
}

TEST(CrossNodeRestore, CheckpointMovesAJobBetweenNodes) {
  // Serialize a context on node A's memory manager and restore it into
  // node B's -- the cross-node job migration the BLCR combination enables.
  vt::Domain dom;
  vt::AttachGuard guard(dom);
  sim::SimParams params{1};
  sim::SimMachine machine_a(dom, params);
  machine_a.add_gpu(sim::test_gpu(1 << 20));
  add_addone(machine_a);
  sim::SimMachine machine_b(dom, params);
  machine_b.add_gpu(sim::test_gpu(1 << 20));
  add_addone(machine_b);
  cudart::CudaRt rt_a(machine_a, cudart::CudaRtConfig{4 * 1024, 8});
  cudart::CudaRt rt_b(machine_b, cudart::CudaRtConfig{4 * 1024, 8});
  MemoryManager mm_a(rt_a);
  MemoryManager mm_b(rt_b);
  const ClientId slot_a = rt_a.create_client();
  const ClientId slot_b = rt_b.create_client();

  const ContextId ctx{1};
  mm_a.add_context(ctx);
  auto p = mm_a.on_malloc(ctx, 32 * sizeof(float));
  ASSERT_TRUE(p.has_value());
  std::vector<float> data(32, 4.0f);
  ASSERT_EQ(mm_a.on_copy_h2d(ctx, p.value(), std::as_bytes(std::span(data)), std::nullopt),
            Status::Ok);
  auto prep = mm_a.prepare_launch(ctx, machine_a.all_gpus()[0], slot_a,
                                  {sim::KernelArg::dev(p.value())});
  ASSERT_EQ(prep.outcome, MemoryManager::PrepareOutcome::Ready);
  ASSERT_EQ(rt_a.launch_by_name(slot_a, "x_addone", {{1, 1, 1}, {32, 1, 1}}, prep.translated),
            Status::Ok);

  auto image = serialize_context(mm_a, ctx);
  ASSERT_TRUE(image.has_value());

  // "Ship" the image to node B and resume there.
  mm_b.add_context(ctx);
  ASSERT_EQ(restore_context(mm_b, ctx, image.value()), Status::Ok);
  auto prep_b = mm_b.prepare_launch(ctx, machine_b.all_gpus()[0], slot_b,
                                    {sim::KernelArg::dev(p.value())});
  ASSERT_EQ(prep_b.outcome, MemoryManager::PrepareOutcome::Ready);
  ASSERT_EQ(rt_b.launch_by_name(slot_b, "x_addone", {{1, 1, 1}, {32, 1, 1}}, prep_b.translated),
            Status::Ok);
  std::vector<float> out(32);
  ASSERT_EQ(mm_b.on_copy_d2h(ctx, std::as_writable_bytes(std::span(out)), p.value(),
                             32 * sizeof(float)),
            Status::Ok);
  for (float v : out) EXPECT_EQ(v, 6.0f);  // 4 + 1 on node A + 1 on node B
}

}  // namespace
}  // namespace gpuvm::core
