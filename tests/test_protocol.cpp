// Wire-protocol robustness: the daemon must survive malformed, truncated
// and out-of-order messages from (potentially buggy or hostile) clients --
// replying with protocol errors, never crashing or corrupting other
// tenants. Drives the daemon through raw Message frames, below FrontendApi.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "common/wire.hpp"
#include "core/frontend.hpp"
#include "core/runtime.hpp"
#include "sim/machine.hpp"
#include "transport/channel.hpp"

namespace gpuvm::core {
namespace {

using transport::Message;
using transport::Opcode;

class ProtocolTest : public ::testing::Test {
 protected:
  ProtocolTest() : guard_(dom_), machine_(dom_, sim::SimParams{1}) {
    machine_.add_gpu(sim::test_gpu(1 << 20));
    rt_ = std::make_unique<cudart::CudaRt>(machine_, cudart::CudaRtConfig{4 * 1024, 8});
    runtime_ = std::make_unique<Runtime>(*rt_);
  }

  /// Opens a raw channel and completes the v2 Hello handshake.
  std::unique_ptr<transport::MessageChannel> connect_raw() {
    auto channel = runtime_->connect();
    Message hello;
    hello.op = Opcode::Hello;
    hello.payload = transport::encode_hello(transport::HelloPayload{});
    EXPECT_TRUE(channel->send(std::move(hello)));
    auto reply = channel->receive();
    EXPECT_TRUE(reply.has_value());
    EXPECT_EQ(transport::reply_status(*reply), Status::Ok);
    return channel;
  }

  Status call(transport::MessageChannel& ch, Opcode op, std::vector<u8> payload) {
    Message msg;
    msg.op = op;
    msg.payload = std::move(payload);
    if (!ch.send(std::move(msg))) return Status::ErrorConnectionClosed;
    auto reply = ch.receive();
    if (!reply.has_value()) return Status::ErrorConnectionClosed;
    return transport::reply_status(*reply);
  }

  vt::Domain dom_;
  vt::AttachGuard guard_;
  sim::SimMachine machine_;
  std::unique_ptr<cudart::CudaRt> rt_;
  std::unique_ptr<Runtime> runtime_;
};

TEST_F(ProtocolTest, TruncatedPayloadsYieldProtocolErrors) {
  auto ch = connect_raw();
  EXPECT_EQ(call(*ch, Opcode::Malloc, {}), Status::ErrorProtocol);           // missing size
  EXPECT_EQ(call(*ch, Opcode::Free, {1, 2}), Status::ErrorProtocol);        // short u64
  EXPECT_EQ(call(*ch, Opcode::MemcpyH2D, {0, 0, 0}), Status::ErrorProtocol);
  EXPECT_EQ(call(*ch, Opcode::MemcpyD2H, {9}), Status::ErrorProtocol);
  EXPECT_EQ(call(*ch, Opcode::Launch, {1}), Status::ErrorProtocol);
  // The connection stays usable afterwards.
  WireWriter w;
  w.put<u64>(64);
  EXPECT_EQ(call(*ch, Opcode::Malloc, w.take()), Status::Ok);
}

TEST_F(ProtocolTest, UnknownOpcodeRejected) {
  auto ch = connect_raw();
  Message msg;
  msg.op = static_cast<Opcode>(250);
  ASSERT_TRUE(ch->send(std::move(msg)));
  auto reply = ch->receive();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(transport::reply_status(*reply), Status::ErrorProtocol);
}

TEST_F(ProtocolTest, FirstMessageMustBeHello) {
  auto channel = runtime_->connect();
  Message msg;
  msg.op = Opcode::Malloc;
  WireWriter w;
  w.put<u64>(64);
  msg.payload = w.take();
  ASSERT_TRUE(channel->send(std::move(msg)));
  // The daemon drops the connection without a reply.
  EXPECT_FALSE(channel->receive().has_value());
}

TEST_F(ProtocolTest, MalformedLengthPrefixInH2DIsSafe) {
  auto ch = connect_raw();
  WireWriter alloc;
  alloc.put<u64>(64);
  ASSERT_EQ(call(*ch, Opcode::Malloc, alloc.take()), Status::Ok);

  // Claim 2^60 bytes of inline data but send 8.
  WireWriter w;
  w.put<u64>(0);                      // dst (invalid anyway)
  w.put<u64>(1ull << 60);             // absurd length prefix
  w.put<u64>(0xdeadbeef);             // only 8 bytes follow
  EXPECT_EQ(call(*ch, Opcode::MemcpyH2D, w.take()), Status::ErrorProtocol);
}

TEST_F(ProtocolTest, SetupArgumentWithoutConfigureRejected) {
  auto ch = connect_raw();
  WireWriter w;
  w.put<u8>(1);
  w.put<u64>(7);
  EXPECT_EQ(call(*ch, Opcode::SetupArgument, w.take()), Status::ErrorInvalidConfiguration);
}

TEST_F(ProtocolTest, RegisterFunctionNeedsValidModule) {
  auto ch = connect_raw();
  WireWriter w;
  w.put<u64>(999);  // never-registered module
  w.put<u64>(0x1);
  w.put_string("anything");
  EXPECT_EQ(call(*ch, Opcode::RegisterFunction, w.take()), Status::ErrorInvalidValue);
}

TEST_F(ProtocolTest, HostileClientDoesNotDisturbTenants) {
  // A well-behaved tenant works while a hostile one sprays garbage.
  sim::KernelDef addone;
  addone.name = "p_addone";
  addone.body = [](sim::KernelExecContext& kc) {
    for (auto& v : kc.buffer<float>(0)) v += 1.0f;
    return Status::Ok;
  };
  addone.cost = sim::per_thread_cost(1.0, 4.0);
  machine_.kernels().add(addone);

  auto hostile = connect_raw();
  FrontendApi good(runtime_->connect());
  ASSERT_EQ(good.register_kernels({"p_addone"}), Status::Ok);
  auto buf = good.malloc(32 * sizeof(float));
  ASSERT_TRUE(buf.has_value());
  std::vector<float> data(32, 1.0f);
  ASSERT_EQ(good.copy_in(buf.value(), data), Status::Ok);

  Rng rng(99);
  for (int i = 0; i < 50; ++i) {
    std::vector<u8> junk(rng.below(64));
    for (auto& b : junk) b = static_cast<u8>(rng.below(256));
    (void)call(*hostile, static_cast<Opcode>(rng.below(70)), std::move(junk));
    if (i % 10 == 0) {
      ASSERT_EQ(good.launch("p_addone", {{1, 1, 1}, {32, 1, 1}},
                            {sim::KernelArg::dev(buf.value())}),
                Status::Ok);
    }
  }
  std::vector<float> out(32);
  ASSERT_EQ(good.copy_out(out, buf.value()), Status::Ok);
  for (float v : out) EXPECT_EQ(v, 6.0f);  // 5 launches
}

TEST_F(ProtocolTest, OldFormatHelloRejectedWithProtocolMismatch) {
  // A version-1 peer began the payload with a raw double cost hint -- no
  // magic word. The daemon must refuse it cleanly, not misparse it.
  auto channel = runtime_->connect();
  WireWriter w;
  w.put<double>(0.25);
  w.put<u8>(0);
  w.put<u64>(0);
  w.put<double>(0.0);
  Message hello;
  hello.op = Opcode::Hello;
  hello.payload = w.take();
  ASSERT_TRUE(channel->send(std::move(hello)));
  auto reply = channel->receive();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(transport::reply_status(*reply), Status::ErrorProtocolMismatch);
  // The daemon hangs up after the rejection.
  EXPECT_FALSE(channel->receive().has_value());
}

TEST_F(ProtocolTest, UnsupportedVersionRejected) {
  auto channel = runtime_->connect();
  WireWriter w;
  w.put<u32>(protocol::kHandshakeMagic);
  w.put<u16>(u16{999});  // from the future
  w.put<u32>(protocol::caps::kAll);
  w.put<double>(0.0);
  w.put<u8>(0);
  w.put<u64>(0);
  w.put<double>(0.0);
  Message hello;
  hello.op = Opcode::Hello;
  hello.payload = w.take();
  ASSERT_TRUE(channel->send(std::move(hello)));
  auto reply = channel->receive();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(transport::reply_status(*reply), Status::ErrorProtocolMismatch);
}

TEST_F(ProtocolTest, TruncatedHelloIsAProtocolError) {
  auto channel = runtime_->connect();
  WireWriter w;
  w.put<u32>(protocol::kHandshakeMagic);
  w.put<u16>(protocol::kProtocolVersion);  // caps and the rest missing
  Message hello;
  hello.op = Opcode::Hello;
  hello.payload = w.take();
  ASSERT_TRUE(channel->send(std::move(hello)));
  auto reply = channel->receive();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(transport::reply_status(*reply), Status::ErrorProtocol);
}

TEST_F(ProtocolTest, CapabilitiesAreNegotiatedAndGateOptionalOps) {
  // A client that does not advertise QueryStats must not be served it --
  // both the frontend (locally) and the daemon (for raw frames) refuse.
  ConnectOptions options;
  options.caps = protocol::caps::kAll & ~protocol::caps::kQueryStats;
  FrontendApi api(runtime_->connect(), options);
  ASSERT_TRUE(api.connected());
  EXPECT_EQ(api.negotiated_caps() & protocol::caps::kQueryStats, 0u);
  EXPECT_EQ(api.query_stats().status(), Status::ErrorNotSupported);

  // Raw channel bypassing the frontend gate: the daemon itself refuses.
  auto channel = runtime_->connect();
  transport::HelloPayload hello;
  hello.caps = protocol::caps::kAll & ~protocol::caps::kQueryStats;
  Message msg;
  msg.op = Opcode::Hello;
  msg.payload = transport::encode_hello(hello);
  ASSERT_TRUE(channel->send(std::move(msg)));
  auto reply = channel->receive();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(transport::reply_status(*reply), Status::Ok);
  auto hr = transport::decode_hello_reply(transport::reply_payload(*reply));
  ASSERT_TRUE(hr.has_value());
  EXPECT_EQ(hr->caps & protocol::caps::kQueryStats, 0u);
  EXPECT_EQ(call(*channel, Opcode::QueryStats, {}), Status::ErrorNotSupported);

  // A fully-capable client still gets everything.
  FrontendApi full(runtime_->connect());
  ASSERT_TRUE(full.connected());
  EXPECT_EQ(full.negotiated_caps(), protocol::caps::kAll);
  EXPECT_TRUE(full.query_stats().has_value());
}

TEST_F(ProtocolTest, QueryLoadIsGatedByTheV3Capability) {
  // A protocol-v2 peer (no kQueryLoad in the handshake) must be refused
  // cleanly -- locally by the frontend and by the daemon for raw frames.
  ConnectOptions options;
  options.caps = protocol::caps::kAll & ~protocol::caps::kQueryLoad;
  FrontendApi v2(runtime_->connect(), options);
  ASSERT_TRUE(v2.connected());
  EXPECT_EQ(v2.negotiated_caps() & protocol::caps::kQueryLoad, 0u);
  EXPECT_EQ(v2.query_load().status(), Status::ErrorNotSupported);

  // A v3 peer gets a coherent one-shot snapshot.
  FrontendApi v3(runtime_->connect());
  ASSERT_TRUE(v3.connected());
  auto load = v3.query_load();
  ASSERT_TRUE(load.has_value());
  EXPECT_EQ(load->seq, 0u);  // one-shot polls are unsequenced
  EXPECT_EQ(load->vgpu_count, runtime_->scheduler().vgpu_count());
  ASSERT_EQ(load->devices.size(), 1u);
  EXPECT_GT(load->devices[0].total_bytes, 0u);
}

TEST_F(ProtocolTest, QueryLoadRejectsMalformedIntervals) {
  auto ch = connect_raw();
  // Negative interval: protocol error, connection stays usable.
  EXPECT_EQ(call(*ch, Opcode::QueryLoad, transport::encode_query_load(-5)),
            Status::ErrorProtocol);
  WireWriter w;
  w.put<u64>(64);
  EXPECT_EQ(call(*ch, Opcode::Malloc, w.take()), Status::Ok);
}

TEST_F(ProtocolTest, DaemonMaskedCapsEmulateAnOlderDaemon) {
  // The daemon side of graceful fallback: a runtime configured with
  // caps_mask stripping kQueryLoad negotiates like a v2 daemon even with a
  // fully-capable client.
  RuntimeConfig config;
  config.caps_mask = protocol::caps::kAll & ~protocol::caps::kQueryLoad;
  Runtime old_daemon(*rt_, config);
  FrontendApi api(old_daemon.connect());
  ASSERT_TRUE(api.connected());
  EXPECT_EQ(api.negotiated_caps() & protocol::caps::kQueryLoad, 0u);
  EXPECT_EQ(api.query_load().status(), Status::ErrorNotSupported);
  // Everything v2 still works.
  EXPECT_TRUE(api.malloc(1024).has_value());
  EXPECT_TRUE(api.query_stats().has_value());
}

TEST_F(ProtocolTest, GoodbyeIsAcknowledgedAndCleansUp) {
  auto ch = connect_raw();
  WireWriter w;
  w.put<u64>(4096);
  ASSERT_EQ(call(*ch, Opcode::Malloc, w.take()), Status::Ok);
  EXPECT_EQ(call(*ch, Opcode::Goodbye, {}), Status::Ok);
  ch->close();
  runtime_->drain();
  EXPECT_EQ(machine_.gpu(machine_.all_gpus()[0])->used_bytes(), 0u);
}

}  // namespace
}  // namespace gpuvm::core
