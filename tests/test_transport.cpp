// Tests for message framing, local channels, and unix-socket transport.
#include "transport/channel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <vector>

#include "common/queue.hpp"
#include "obs/metrics.hpp"
#include "transport/unix_socket.hpp"

namespace gpuvm::transport {
namespace {

Message make_msg(Opcode op, u64 conn, std::vector<u8> payload = {}) {
  Message m;
  m.op = op;
  m.connection = ConnectionId{conn};
  m.payload = std::move(payload);
  return m;
}

TEST(Framing, EncodeDecodeRoundTrip) {
  FrameDecoder dec;
  std::vector<Message> out;
  const auto frame = encode_frame(make_msg(Opcode::Malloc, 42, {1, 2, 3}));
  ASSERT_TRUE(dec.feed(frame, out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].op, Opcode::Malloc);
  EXPECT_EQ(out[0].connection.value, 42u);
  EXPECT_EQ(out[0].payload, (std::vector<u8>{1, 2, 3}));
}

TEST(Framing, HandlesSplitAndCoalescedFrames) {
  FrameDecoder dec;
  std::vector<Message> out;
  auto f1 = encode_frame(make_msg(Opcode::Hello, 1));
  auto f2 = encode_frame(make_msg(Opcode::Launch, 2, std::vector<u8>(1000, 9)));
  std::vector<u8> stream;
  stream.insert(stream.end(), f1.begin(), f1.end());
  stream.insert(stream.end(), f2.begin(), f2.end());

  // Feed one byte at a time: no frame may be lost or duplicated.
  for (u8 b : stream) ASSERT_TRUE(dec.feed(std::span<const u8>(&b, 1), out));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].op, Opcode::Hello);
  EXPECT_EQ(out[1].op, Opcode::Launch);
  EXPECT_EQ(out[1].payload.size(), 1000u);
}

TEST(Framing, RejectsBadMagic) {
  FrameDecoder dec;
  std::vector<Message> out;
  std::vector<u8> junk(64, 0xff);
  EXPECT_FALSE(dec.feed(junk, out));
  EXPECT_TRUE(dec.poisoned());
  EXPECT_TRUE(out.empty());
}

TEST(Framing, ReplyHelpersRoundTripStatus) {
  WireWriter w;
  w.put<u64>(0xabcd);
  auto reply = make_reply(ConnectionId{7}, Status::ErrorMemoryAllocation, w.take());
  EXPECT_EQ(reply_status(reply), Status::ErrorMemoryAllocation);
  WireReader r(reply_payload(reply));
  EXPECT_EQ(r.get<u64>(), 0xabcdu);
}

TEST(LocalChannel, BidirectionalSendReceive) {
  vt::Domain dom;
  auto [a, b] = make_local_pair(dom);
  std::optional<Message> got_b;
  std::optional<Message> got_a;
  {
    dom.hold();
    vt::Thread tb(dom, [&, b = b.get()] {
      got_b = b->receive();
      b->send(make_msg(Opcode::Reply, 5));
    });
    vt::Thread ta(dom, [&, a = a.get()] {
      a->send(make_msg(Opcode::Hello, 5));
      got_a = a->receive();
    });
    dom.unhold();
  }
  ASSERT_TRUE(got_b.has_value());
  EXPECT_EQ(got_b->op, Opcode::Hello);
  ASSERT_TRUE(got_a.has_value());
  EXPECT_EQ(got_a->op, Opcode::Reply);
}

TEST(LocalChannel, CloseWakesReceiver) {
  vt::Domain dom;
  std::atomic<bool> got_null{false};
  auto [a, b] = make_local_pair(dom);
  {
    dom.hold();
    vt::Thread rx(dom, [&, b = b.get()] { got_null = !b->receive().has_value(); });
    vt::Thread closer(dom, [&, a = a.get()] {
      dom.sleep_for(vt::from_millis(1));
      a->close();
    });
    dom.unhold();
  }
  EXPECT_TRUE(got_null.load());
  EXPECT_FALSE(a->send(make_msg(Opcode::Hello, 1)));
}

TEST(LocalChannel, LatencyCostsVirtualTime) {
  vt::Domain dom;
  auto [a, b] = make_local_pair(dom, ChannelCosts{vt::from_micros(100), 0.0});
  vt::TimePoint delivered{};
  {
    dom.hold();
    vt::Thread rx(dom, [&, b = b.get()] {
      (void)b->receive();
      delivered = dom.now();
    });
    vt::Thread tx(dom, [&, a = a.get()] { a->send(make_msg(Opcode::Hello, 1)); });
    dom.unhold();
  }
  EXPECT_GE(delivered, vt::from_micros(100));
  EXPECT_LT(delivered, vt::from_micros(120));
}

TEST(LocalChannel, BandwidthCostsScaleWithPayload) {
  vt::Domain dom;
  // 1 Gb/s... actually modeled as GB/s: 1e9 bytes/s.
  auto [a, b] = make_local_pair(dom, ChannelCosts{vt::Duration::zero(), 1.0});
  vt::TimePoint delivered{};
  {
    dom.hold();
    vt::Thread rx(dom, [&, b = b.get()] {
      (void)b->receive();
      delivered = dom.now();
    });
    vt::Thread tx(dom, [&, a = a.get()] {
      a->send(make_msg(Opcode::MemcpyH2D, 1, std::vector<u8>(1'000'000, 0)));
    });
    dom.unhold();
  }
  // 1 MB over 1 GB/s = 1 ms.
  EXPECT_GE(delivered, vt::from_millis(1));
  EXPECT_LT(delivered, vt::from_millis(1.2));
}

TEST(LocalChannel, ManyMessagesKeepOrder) {
  vt::Domain dom;
  auto [a, b] = make_local_pair(dom);
  std::vector<u64> seen;
  {
    dom.hold();
    vt::Thread rx(dom, [&, b = b.get()] {
      while (auto m = b->receive()) {
        if (m->op == Opcode::Goodbye) break;
        seen.push_back(m->connection.value);
      }
    });
    vt::Thread tx(dom, [&, a = a.get()] {
      for (u64 i = 0; i < 500; ++i) a->send(make_msg(Opcode::SetupArgument, i));
      a->send(make_msg(Opcode::Goodbye, 0));
    });
    dom.unhold();
  }
  ASSERT_EQ(seen.size(), 500u);
  for (u64 i = 0; i < 500; ++i) EXPECT_EQ(seen[i], i);
}

class UnixSocketTest : public ::testing::Test {
 protected:
  std::string socket_path() {
    return "/tmp/gpuvm_test_" + std::to_string(::getpid()) + "_" +
           std::to_string(reinterpret_cast<uintptr_t>(this) & 0xffff) + ".sock";
  }
};

TEST_F(UnixSocketTest, EndToEndRequestReply) {
  vt::Domain dom;
  const std::string path = socket_path();

  VtQueue<std::unique_ptr<MessageChannel>> accepted(dom);
  auto server = UnixSocketServer::listen(
      path, [&](std::unique_ptr<MessageChannel> ch) { accepted.push(std::move(ch)); });
  ASSERT_TRUE(server.has_value());

  std::optional<Message> client_got;
  {
    dom.hold();
    vt::Thread server_side(dom, [&] {
      auto ch = accepted.pop();
      ASSERT_TRUE(ch.has_value());
      auto msg = (*ch)->receive();
      ASSERT_TRUE(msg.has_value());
      EXPECT_EQ(msg->op, Opcode::Malloc);
      WireReader r(msg->payload);
      EXPECT_EQ(r.get<u64>(), 4096u);
      WireWriter w;
      w.put<u64>(0xdead0000);
      (*ch)->send(make_reply(msg->connection, Status::Ok, w.take()));
      (*ch)->close();
    });
    vt::Thread client_side(dom, [&] {
      auto ch = unix_connect(path);
      ASSERT_TRUE(ch.has_value());
      WireWriter w;
      w.put<u64>(4096);
      Message m = make_msg(Opcode::Malloc, 1, w.take());
      ASSERT_TRUE(ch.value()->send(std::move(m)));
      client_got = ch.value()->receive();
    });
    dom.unhold();
  }
  server.value()->stop();
  ASSERT_TRUE(client_got.has_value());
  EXPECT_EQ(reply_status(*client_got), Status::Ok);
  WireReader r(reply_payload(*client_got));
  EXPECT_EQ(r.get<u64>(), 0xdead0000u);
}

TEST_F(UnixSocketTest, ConnectToMissingPathFails) {
  auto ch = unix_connect("/tmp/gpuvm_nonexistent_9a7b.sock");
  EXPECT_FALSE(ch.has_value());
  EXPECT_EQ(ch.status(), Status::ErrorConnectionClosed);
}

TEST_F(UnixSocketTest, MultipleConcurrentClients) {
  vt::Domain dom;
  const std::string path = socket_path();
  std::atomic<int> served{0};

  std::vector<vt::Thread> handlers;
  std::mutex handlers_mu;
  auto server = UnixSocketServer::listen(path, [&](std::unique_ptr<MessageChannel> ch) {
    std::scoped_lock lock(handlers_mu);
    handlers.emplace_back(dom, [&served, ch = std::shared_ptr<MessageChannel>(std::move(ch))] {
      while (auto msg = ch->receive()) {
        ch->send(make_reply(msg->connection, Status::Ok));
        served.fetch_add(1);
      }
    });
  });
  ASSERT_TRUE(server.has_value());

  {
    dom.hold();
    std::vector<vt::Thread> clients;
    for (int c = 0; c < 8; ++c) {
      clients.emplace_back(dom, [&, c] {
        auto ch = unix_connect(path);
        ASSERT_TRUE(ch.has_value());
        for (int i = 0; i < 20; ++i) {
          ASSERT_TRUE(ch.value()->send(make_msg(Opcode::Synchronize, static_cast<u64>(c))));
          auto reply = ch.value()->receive();
          ASSERT_TRUE(reply.has_value());
          EXPECT_EQ(reply_status(*reply), Status::Ok);
        }
        ch.value()->close();
      });
    }
    dom.unhold();
  }
  server.value()->stop();
  {
    std::scoped_lock lock(handlers_mu);
    handlers.clear();  // join handler threads
  }
  EXPECT_EQ(served.load(), 160);
}

// ---------------------------------------------------------------------------
// Fault injection (chaos layer): deterministic drops, retransmit budget,
// reconnecting channels.

/// Runs one sender/receiver exchange of `count` messages under a fault
/// injector; returns the transport.retries delta for the run.
u64 run_lossy_exchange(u64 seed, double drop_rate, int count) {
  reset_channel_serial();  // same pipe stream ids -> same drop decisions
  obs::Counter& retries = obs::metrics().counter("transport.retries");
  const u64 before = retries.value();
  ScopedFaultInjector injector(seed);
  injector.injector().degrade(drop_rate, vt::from_micros(50));

  vt::Domain dom;
  auto [a, b] = make_local_pair(dom);
  std::vector<u64> received;
  {
    dom.hold();
    vt::Thread rx(dom, [&, b = b.get()] {
      while (auto msg = b->receive()) received.push_back(msg->connection.value);
    });
    vt::Thread tx(dom, [&, a = a.get(), count] {
      for (int i = 0; i < count; ++i) {
        ASSERT_TRUE(a->send(make_msg(Opcode::Launch, static_cast<u64>(i))));
      }
      a->close();
    });
    dom.unhold();
  }
  // Drops retransmit under the hood: everything arrives, in order.
  EXPECT_EQ(received.size(), static_cast<size_t>(count));
  for (size_t i = 0; i < received.size(); ++i) EXPECT_EQ(received[i], i);
  return retries.value() - before;
}

TEST(FaultInjection, DropsRetransmitDeterministically) {
  const u64 first = run_lossy_exchange(/*seed=*/77, /*drop_rate=*/0.3, /*count=*/60);
  EXPECT_GE(first, 1u) << "30% drop over 60 sends should hit at least one retransmit";
  // Same seed, same streams, same sequence numbers: bit-identical retries.
  const u64 second = run_lossy_exchange(77, 0.3, 60);
  EXPECT_EQ(first, second);

  // Different seeds take different drop patterns (the drop decision is a
  // pure hash of seed/stream/seq, so compare the patterns directly).
  auto pattern = [](u64 seed) {
    FaultInjector fi(seed);
    fi.degrade(0.3, vt::Duration{});
    std::string bits;
    for (u64 seq = 0; seq < 64; ++seq) bits += fi.should_drop(/*stream=*/1, seq) ? '1' : '0';
    return bits;
  };
  EXPECT_EQ(pattern(77), pattern(77));
  EXPECT_NE(pattern(77), pattern(78));
}

TEST(FaultInjection, TotalLossBreaksChannelAfterRetransmitBudget) {
  obs::Counter& broken = obs::metrics().counter("transport.broken_channels");
  const u64 before = broken.value();
  ScopedFaultInjector injector(9);
  injector.injector().degrade(/*drop_rate=*/1.0, vt::Duration{});

  vt::Domain dom;
  auto [a, b] = make_local_pair(dom);
  bool sent = true;
  {
    dom.hold();
    vt::Thread tx(dom, [&, a = a.get()] { sent = a->send(make_msg(Opcode::Hello, 1)); });
    dom.unhold();
  }
  EXPECT_FALSE(sent) << "a fully lossy link must give up after the retransmit budget";
  EXPECT_TRUE(a->closed());
  EXPECT_EQ(broken.value(), before + 1);
}

TEST(ReconnectingChannelTest, ReopensOnPeerLossAndResends) {
  obs::Counter& reconnects = obs::metrics().counter("transport.reconnects");
  const u64 before = reconnects.value();

  vt::Domain dom;
  vt::AttachGuard attach(dom);
  std::vector<std::unique_ptr<MessageChannel>> peers;
  auto factory = [&]() -> std::unique_ptr<MessageChannel> {
    auto [mine, theirs] = make_local_pair(dom);
    peers.push_back(std::move(theirs));
    return std::move(mine);
  };

  ReconnectingChannel ch(factory, /*max_reconnects=*/2);
  ASSERT_EQ(peers.size(), 1u);
  ASSERT_TRUE(ch.send(make_msg(Opcode::Hello, 1)));
  EXPECT_EQ(ch.reconnects_used(), 0);

  // Peer dies; the next send must transparently reopen and deliver.
  peers[0]->close();
  ASSERT_TRUE(ch.send(make_msg(Opcode::Launch, 2)));
  EXPECT_EQ(ch.reconnects_used(), 1);
  ASSERT_EQ(peers.size(), 2u);
  auto got = peers[1]->receive();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->op, Opcode::Launch);
  EXPECT_EQ(reconnects.value(), before + 1);

  // The budget is finite: after max_reconnects replacements, a dead peer
  // means the send fails instead of looping.
  peers[1]->close();
  ASSERT_TRUE(ch.send(make_msg(Opcode::Launch, 3)));  // second (last) reconnect
  EXPECT_EQ(ch.reconnects_used(), 2);
  peers[2]->close();
  EXPECT_FALSE(ch.send(make_msg(Opcode::Launch, 4)));
}

}  // namespace
}  // namespace gpuvm::transport
