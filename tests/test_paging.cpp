// Tests for the page-granular memory engine (MmConfig::paging):
//  - IntervalSet page-alignment helpers (page_floor/page_ceil, page_rounded,
//    pages, intersected)
//  - the paging policy registries (typed unknown-name errors, sorted name
//    lists, later-registration-wins shadowing) and the built-in policies'
//    scoring/prediction behaviour
//  - the paged engine itself: hint-scoped uploads, demand faulting of cold
//    pages, TLB hit/miss accounting, write-hint-scoped writeback, async
//    prefetch, policy-driven victim selection
//  - differential proofs that the paged engine is byte-identical to the
//    entry-granular baseline for the same operation sequence (with strictly
//    less device traffic), through checkpoint/restore, and at the chaos
//    harness level through fault plans and live migration -- with
//    bit-identical determinism under replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "chaos/harness.hpp"
#include "common/interval_set.hpp"
#include "core/memory_manager.hpp"
#include "core/paging_policy.hpp"
#include "sim/machine.hpp"

namespace gpuvm::core {
namespace {

using MM = MemoryManager;
constexpr u64 kPage = 4 * 1024;

// ---- IntervalSet page helpers ----------------------------------------------

TEST(PageHelpers, FloorAndCeil) {
  EXPECT_EQ(page_floor(0, kPage), 0u);
  EXPECT_EQ(page_floor(kPage - 1, kPage), 0u);
  EXPECT_EQ(page_floor(kPage, kPage), kPage);
  EXPECT_EQ(page_ceil(0, kPage), 0u);
  EXPECT_EQ(page_ceil(1, kPage), kPage);
  EXPECT_EQ(page_ceil(kPage, kPage), kPage);
  EXPECT_EQ(page_ceil(kPage + 1, kPage), 2 * kPage);
}

TEST(PageHelpers, PageRoundedExpandsOutwardAndClampsToLimit) {
  IntervalSet s;
  s.add(100, 200);            // interior of page 0
  s.add(kPage + 904, kPage + 1004);  // interior of page 1
  const IntervalSet r = s.page_rounded(kPage, /*limit=*/kPage + 1004);
  // Both ranges round to whole pages; page 1's end clamps to the entry
  // size; the two rounded pages meet and coalesce into one range.
  ASSERT_EQ(r.ranges().size(), 1u);
  EXPECT_EQ(r.ranges()[0], (ByteRange{0, kPage + 1004}));

  IntervalSet far;
  far.add(10, 20);
  far.add(10 * kPage + 1, 10 * kPage + 2);
  const IntervalSet rf = far.page_rounded(kPage, 64 * kPage);
  ASSERT_EQ(rf.ranges().size(), 2u);
  EXPECT_EQ(rf.ranges()[0], (ByteRange{0, kPage}));
  EXPECT_EQ(rf.ranges()[1], (ByteRange{10 * kPage, 11 * kPage}));
}

TEST(PageHelpers, PagesDeduplicatesAndHonorsLimit) {
  IntervalSet s;
  s.add(0, 10);
  s.add(20, 30);             // same page as the first range
  s.add(kPage, kPage + 1);   // page 1
  s.add(3 * kPage, 4 * kPage);  // pages past the limit are dropped
  const auto pages = s.pages(kPage, /*limit=*/2 * kPage);
  EXPECT_EQ(pages, (std::vector<u64>{0, 1}));
  // A range straddling a page boundary names both pages.
  IntervalSet straddle;
  straddle.add(kPage - 1, kPage + 1);
  EXPECT_EQ(straddle.pages(kPage, 4 * kPage), (std::vector<u64>{0, 1}));
}

TEST(PageHelpers, IntersectedComputesExactOverlap) {
  IntervalSet a;
  a.add(0, 100);
  a.add(200, 300);
  IntervalSet b;
  b.add(50, 250);
  const IntervalSet i = a.intersected(b);
  ASSERT_EQ(i.ranges().size(), 2u);
  EXPECT_EQ(i.ranges()[0], (ByteRange{50, 100}));
  EXPECT_EQ(i.ranges()[1], (ByteRange{200, 250}));
  EXPECT_TRUE(a.intersected(IntervalSet{}).empty());
}

// ---- Policy registries ------------------------------------------------------

TEST(PagingPolicyRegistry, UnknownNamesAreTypedErrors) {
  EXPECT_EQ(make_eviction_policy("no-such-policy").status(), Status::ErrorInvalidValue);
  EXPECT_EQ(make_prefetch_policy("no-such-policy").status(), Status::ErrorInvalidValue);
}

TEST(PagingPolicyRegistry, BuiltinsAreListedSorted) {
  const auto ev = eviction_policy_names();
  EXPECT_TRUE(std::is_sorted(ev.begin(), ev.end()));
  EXPECT_NE(std::find(ev.begin(), ev.end(), "page-lru"), ev.end());
  EXPECT_NE(std::find(ev.begin(), ev.end(), "working-set"), ev.end());
  const auto pf = prefetch_policy_names();
  EXPECT_TRUE(std::is_sorted(pf.begin(), pf.end()));
  EXPECT_NE(std::find(pf.begin(), pf.end(), "none"), pf.end());
  EXPECT_NE(std::find(pf.begin(), pf.end(), "sequential"), pf.end());
  EXPECT_NE(std::find(pf.begin(), pf.end(), "stride"), pf.end());
}

class ConstScoreEviction : public EvictionPolicy {
 public:
  explicit ConstScoreEviction(const char* name) : name_(name) {}
  const char* name() const override { return name_; }
  double score(const EvictionCandidate&, i64) const override { return 0.0; }

 private:
  const char* name_;
};

TEST(PagingPolicyRegistry, LaterRegistrationShadowsEarlier) {
  register_eviction_policy("test-shadow",
                           [] { return std::make_unique<ConstScoreEviction>("first"); });
  register_eviction_policy("test-shadow",
                           [] { return std::make_unique<ConstScoreEviction>("second"); });
  auto made = make_eviction_policy("test-shadow");
  ASSERT_TRUE(made.has_value());
  EXPECT_STREQ(made.value()->name(), "second");
}

// ---- Built-in policy behaviour ----------------------------------------------

TEST(PagingPolicies, PageLruRanksByHottestPageWithEntryFallback) {
  auto policy = make_eviction_policy("page-lru").value();
  const std::vector<i64> cold{100, 0, 0};
  const std::vector<i64> warm{100, 900, 0};
  EvictionCandidate a{1, 3 * kPage, kPage, 50, std::span<const i64>(cold)};
  EvictionCandidate b{2, 3 * kPage, kPage, 50, std::span<const i64>(warm)};
  EXPECT_LT(policy->score(a, 1000), policy->score(b, 1000));
  // No page stamps: ranks by the entry LRU stamp, i.e. exactly like the
  // entry-granular baseline.
  EvictionCandidate unstamped{3, 3 * kPage, kPage, 700, {}};
  EXPECT_GT(policy->score(unstamped, 1000), policy->score(a, 1000));
}

TEST(PagingPolicies, WorkingSetPopulationDominatesRecency) {
  auto policy = make_eviction_policy("working-set").value();
  // One hot page, very recent vs. three pages all inside the window but
  // older: the small working set must score lower (evict first).
  const std::vector<i64> one_hot{0, 0, 10'000};
  const std::vector<i64> streaming{4'000, 5'000, 6'000};
  EvictionCandidate small{1, 3 * kPage, kPage, 0, std::span<const i64>(one_hot)};
  EvictionCandidate wide{2, 3 * kPage, kPage, 0, std::span<const i64>(streaming)};
  EXPECT_LT(policy->score(small, 10'000), policy->score(wide, 10'000));
}

TEST(PagingPolicies, SequentialPredictsFollowingPagesWithinEntry) {
  auto policy = make_prefetch_policy("sequential").value();
  const std::vector<u64> accessed{2, 3};
  std::vector<u64> out;
  policy->predict({0x10, kPage, 6, std::span<const u64>(accessed)}, 2, &out);
  EXPECT_EQ(out, (std::vector<u64>{4, 5}));
  out.clear();
  policy->predict({0x10, kPage, 5, std::span<const u64>(accessed)}, 4, &out);
  EXPECT_EQ(out, (std::vector<u64>{4}));  // stops at the entry's last page
}

TEST(PagingPolicies, StrideDetectsUniformStrideOrStaysQuiet) {
  auto policy = make_prefetch_policy("stride").value();
  const std::vector<u64> strided{0, 2, 4};
  std::vector<u64> out;
  policy->predict({0x10, kPage, 16, std::span<const u64>(strided)}, 2, &out);
  EXPECT_EQ(out, (std::vector<u64>{6, 8}));
  // Irregular access: no stride, no prediction (never blind readahead).
  const std::vector<u64> irregular{0, 1, 5};
  out.clear();
  policy->predict({0x20, kPage, 16, std::span<const u64>(irregular)}, 2, &out);
  EXPECT_TRUE(out.empty());
  // Single-page launches fall back to the stride between launches.
  const std::vector<u64> first{3};
  const std::vector<u64> second{6};
  out.clear();
  policy->predict({0x30, kPage, 32, std::span<const u64>(first)}, 2, &out);
  EXPECT_TRUE(out.empty());  // no history yet
  policy->predict({0x30, kPage, 32, std::span<const u64>(second)}, 2, &out);
  EXPECT_EQ(out, (std::vector<u64>{9, 12}));
}

// ---- Paged engine -----------------------------------------------------------

class PagedEngineTest : public ::testing::Test {
 protected:
  PagedEngineTest() : guard_(dom_), machine_(dom_, sim::SimParams{1}) {
    gpu_a_ = machine_.add_gpu(sim::test_gpu(1 << 20));
    gpu_b_ = machine_.add_gpu(sim::test_gpu(1 << 20));
    rt_ = std::make_unique<cudart::CudaRt>(machine_, cudart::CudaRtConfig{4 * 1024, 8});
    slot_a_ = rt_->create_client();
    (void)rt_->set_device(slot_a_, 0);
    slot_b_ = rt_->create_client();
    (void)rt_->set_device(slot_b_, 1);
  }

  static MM::Config paged_config() {
    MM::Config cfg;
    cfg.paging = true;
    cfg.page_bytes = kPage;
    cfg.prefetch_policy = "none";  // tests opt into prefetch explicitly
    return cfg;
  }

  u64 up_a() { return machine_.gpu(gpu_a_)->stats().bytes_to_device; }
  u64 down_a() { return machine_.gpu(gpu_a_)->stats().bytes_from_device; }

  VirtualPtr alloc_filled(MM& mm, ContextId ctx, u64 size, std::byte fill) {
    auto p = mm.on_malloc(ctx, size);
    EXPECT_TRUE(p.has_value());
    std::vector<std::byte> data(size, fill);
    EXPECT_EQ(mm.on_copy_h2d(ctx, p.value(), data, std::nullopt), Status::Ok);
    return p.value();
  }

  std::vector<std::byte> read_back(MM& mm, ContextId ctx, VirtualPtr p, u64 size) {
    std::vector<std::byte> out(size);
    EXPECT_EQ(mm.on_copy_d2h(ctx, out, p, size), Status::Ok);
    return out;
  }

  vt::Domain dom_;
  vt::AttachGuard guard_;
  sim::SimMachine machine_;
  GpuId gpu_a_;
  GpuId gpu_b_;
  std::unique_ptr<cudart::CudaRt> rt_;
  ClientId slot_a_;
  ClientId slot_b_;
};

TEST_F(PagedEngineTest, HintedLaunchUploadsOnlyHintedPagesAndFaultsColdOnesLater) {
  MM mm(*rt_, paged_config());
  const ContextId ctx{1};
  mm.add_context(ctx);
  constexpr u64 kSize = 64 * 1024;  // 16 pages
  const VirtualPtr p = alloc_filled(mm, ctx, kSize, std::byte{0x11});

  // First launch declares page 0 only: exactly one page ships.
  const u64 before = up_a();
  auto prep = mm.prepare_launch(ctx, gpu_a_, slot_a_,
                                {sim::KernelArg::dev(p), sim::KernelArg::access_hint(0, 0, kPage)});
  ASSERT_EQ(prep.outcome, MM::PrepareOutcome::Ready);
  EXPECT_EQ(up_a() - before, kPage);
  EXPECT_EQ(mm.stats().page_faults, 1u);

  // A later launch naming cold pages demand-faults exactly those.
  const u64 before2 = up_a();
  prep = mm.prepare_launch(
      ctx, gpu_a_, slot_a_,
      {sim::KernelArg::dev(p), sim::KernelArg::access_hint(0, 2 * kPage, 2 * kPage)});
  ASSERT_EQ(prep.outcome, MM::PrepareOutcome::Ready);
  EXPECT_EQ(up_a() - before2, 2 * kPage);
  EXPECT_EQ(mm.stats().page_faults, 3u);

  // Read-only hinted launches dirty nothing; swap still holds the truth.
  EXPECT_EQ(read_back(mm, ctx, p, kSize), std::vector<std::byte>(kSize, std::byte{0x11}));
}

TEST_F(PagedEngineTest, TlbMissesOnFirstWalkHitsOnRepeat) {
  MM mm(*rt_, paged_config());
  const ContextId ctx{1};
  mm.add_context(ctx);
  const VirtualPtr p = alloc_filled(mm, ctx, 4 * kPage, std::byte{0x22});

  // Unhinted reference: every page of the entry is walked.
  auto prep = mm.prepare_launch(ctx, gpu_a_, slot_a_, {sim::KernelArg::dev(p)});
  ASSERT_EQ(prep.outcome, MM::PrepareOutcome::Ready);
  EXPECT_EQ(mm.stats().tlb_misses, 4u);
  EXPECT_EQ(mm.stats().tlb_hits, 0u);

  prep = mm.prepare_launch(ctx, gpu_a_, slot_a_, {sim::KernelArg::dev(p)});
  ASSERT_EQ(prep.outcome, MM::PrepareOutcome::Ready);
  EXPECT_EQ(mm.stats().tlb_misses, 4u);
  EXPECT_EQ(mm.stats().tlb_hits, 4u);
}

TEST_F(PagedEngineTest, TinyTlbThrashesDeterministically) {
  MM::Config cfg = paged_config();
  cfg.tlb_entries = 2;  // smaller than the 4-page working set
  MM mm(*rt_, cfg);
  const ContextId ctx{1};
  mm.add_context(ctx);
  const VirtualPtr p = alloc_filled(mm, ctx, 4 * kPage, std::byte{0x33});
  for (int i = 0; i < 3; ++i) {
    auto prep = mm.prepare_launch(ctx, gpu_a_, slot_a_, {sim::KernelArg::dev(p)});
    ASSERT_EQ(prep.outcome, MM::PrepareOutcome::Ready);
  }
  // The LRU slot is always evicted before its page comes around again.
  EXPECT_EQ(mm.stats().tlb_hits, 0u);
  EXPECT_EQ(mm.stats().tlb_misses, 12u);
}

TEST_F(PagedEngineTest, WrittenHintsScopeWritebackToWrittenPages) {
  MM mm(*rt_, paged_config());
  const ContextId ctx{1};
  mm.add_context(ctx);
  constexpr u64 kSize = 4 * kPage;
  const VirtualPtr p = alloc_filled(mm, ctx, kSize, std::byte{0x44});

  auto prep = mm.prepare_launch(
      ctx, gpu_a_, slot_a_,
      {sim::KernelArg::dev(p), sim::KernelArg::access_hint(0, kPage, kPage, /*written=*/true)});
  ASSERT_EQ(prep.outcome, MM::PrepareOutcome::Ready);
  // "Run the kernel": poke exactly the hinted-written page on the device.
  std::vector<std::byte> poke(kPage, std::byte{0x55});
  ASSERT_EQ(machine_.gpu(gpu_a_)->poke(prep.translated[0].as_ptr() + kPage, poke), Status::Ok);

  // Eviction writes back only the declared write-set: one page.
  const u64 before = down_a();
  ASSERT_EQ(mm.swap_context(ctx), Status::Ok);
  EXPECT_EQ(down_a() - before, kPage);
  EXPECT_EQ(mm.stats().page_evictions, 4u);  // all pages of the entry freed

  auto out = read_back(mm, ctx, p, kSize);
  for (u64 i = 0; i < kSize; ++i) {
    const std::byte want = (i >= kPage && i < 2 * kPage) ? std::byte{0x55} : std::byte{0x44};
    ASSERT_EQ(out[i], want) << "byte " << i;
  }
}

TEST_F(PagedEngineTest, SequentialPrefetchShipsPredictedPagesAsynchronously) {
  MM::Config cfg = paged_config();
  cfg.prefetch_policy = "sequential";
  cfg.prefetch_lookahead = 2;
  MM mm(*rt_, cfg);
  const ContextId ctx{1};
  mm.add_context(ctx);
  const VirtualPtr p = alloc_filled(mm, ctx, 8 * kPage, std::byte{0x66});

  auto prep = mm.prepare_launch(ctx, gpu_a_, slot_a_,
                                {sim::KernelArg::dev(p), sim::KernelArg::access_hint(0, 0, kPage)});
  ASSERT_EQ(prep.outcome, MM::PrepareOutcome::Ready);
  EXPECT_EQ(mm.stats().page_faults, 1u);       // page 0 demand-faulted
  EXPECT_EQ(mm.stats().prefetched_pages, 2u);  // pages 1, 2 predicted

  // The next launch's pages already landed: no synchronous fault.
  prep = mm.prepare_launch(
      ctx, gpu_a_, slot_a_,
      {sim::KernelArg::dev(p), sim::KernelArg::access_hint(0, kPage, kPage)});
  ASSERT_EQ(prep.outcome, MM::PrepareOutcome::Ready);
  EXPECT_EQ(mm.stats().page_faults, 1u);
  EXPECT_EQ(read_back(mm, ctx, p, 8 * kPage), std::vector<std::byte>(8 * kPage, std::byte{0x66}));
}

TEST_F(PagedEngineTest, PageLruEvictsEntryWithColdestHottestPage) {
  MM mm(*rt_, paged_config());  // eviction_policy defaults to page-lru
  const ContextId ctx{1};
  mm.add_context(ctx);
  constexpr u64 kSize = 240 * 1024;
  dom_.sleep_for(vt::from_micros(1));  // page stamps at exactly 0 read as never-touched
  std::vector<VirtualPtr> entries;
  for (int i = 0; i < 4; ++i) {
    entries.push_back(alloc_filled(mm, ctx, kSize, static_cast<std::byte>(0x10 + i)));
    auto prep = mm.prepare_launch(
        ctx, gpu_a_, slot_a_,
        {sim::KernelArg::dev(entries.back()), sim::KernelArg::access_hint(0, 0, kPage)});
    ASSERT_EQ(prep.outcome, MM::PrepareOutcome::Ready);
    dom_.sleep_for(vt::from_micros(10));  // distinct page stamps
  }

  // A fifth entry forces one eviction; the policy must pick e0 (its only
  // touched page is the coldest), matching the entry-LRU baseline.
  const VirtualPtr big = alloc_filled(mm, ctx, kSize, std::byte{0x77});
  auto prep = mm.prepare_launch(ctx, gpu_a_, slot_a_, {sim::KernelArg::dev(big)});
  ASSERT_EQ(prep.outcome, MM::PrepareOutcome::Ready);
  EXPECT_EQ(mm.stats().swapped_entries, 1u);

  u64 transfers = mm.stats().bulk_transfers;
  for (int i = 1; i < 4; ++i) {
    prep = mm.prepare_launch(
        ctx, gpu_a_, slot_a_,
        {sim::KernelArg::dev(entries[i]), sim::KernelArg::access_hint(0, 0, kPage)});
    ASSERT_EQ(prep.outcome, MM::PrepareOutcome::Ready);
    dom_.sleep_for(vt::from_micros(10));
  }
  EXPECT_EQ(mm.stats().bulk_transfers, transfers) << "e1..e3 must still be resident";

  transfers = mm.stats().bulk_transfers;
  prep = mm.prepare_launch(
      ctx, gpu_a_, slot_a_,
      {sim::KernelArg::dev(entries[0]), sim::KernelArg::access_hint(0, 0, kPage)});
  ASSERT_EQ(prep.outcome, MM::PrepareOutcome::Ready);
  EXPECT_GT(mm.stats().bulk_transfers, transfers) << "e0 must have been the victim";
}

TEST_F(PagedEngineTest, WorkingSetEvictsSmallestRecentFootprint) {
  MM::Config cfg = paged_config();
  cfg.eviction_policy = "working-set";
  MM mm(*rt_, cfg);
  const ContextId ctx{1};
  mm.add_context(ctx);
  constexpr u64 kSize = 240 * 1024;

  // e0 streams through all of its pages; e1..e3 touch one page each, later.
  // Under working-set the victim is e1 (smallest window population, oldest
  // stamp on the tie) even though e0's stamps are older. Start off t=0:
  // a page stamped at exactly 0 is indistinguishable from never-touched.
  dom_.sleep_for(vt::from_micros(1));
  std::vector<VirtualPtr> entries;
  entries.push_back(alloc_filled(mm, ctx, kSize, std::byte{0x10}));
  auto prep = mm.prepare_launch(
      ctx, gpu_a_, slot_a_,
      {sim::KernelArg::dev(entries[0]), sim::KernelArg::access_hint(0, 0, kSize)});
  ASSERT_EQ(prep.outcome, MM::PrepareOutcome::Ready);
  dom_.sleep_for(vt::from_micros(10));
  for (int i = 1; i < 4; ++i) {
    entries.push_back(alloc_filled(mm, ctx, kSize, static_cast<std::byte>(0x10 + i)));
    prep = mm.prepare_launch(
        ctx, gpu_a_, slot_a_,
        {sim::KernelArg::dev(entries.back()), sim::KernelArg::access_hint(0, 0, kPage)});
    ASSERT_EQ(prep.outcome, MM::PrepareOutcome::Ready);
    dom_.sleep_for(vt::from_micros(10));
  }

  const VirtualPtr big = alloc_filled(mm, ctx, kSize, std::byte{0x77});
  prep = mm.prepare_launch(ctx, gpu_a_, slot_a_, {sim::KernelArg::dev(big)});
  ASSERT_EQ(prep.outcome, MM::PrepareOutcome::Ready);
  EXPECT_EQ(mm.stats().swapped_entries, 1u);

  u64 transfers = mm.stats().bulk_transfers;
  for (const int i : {0, 2, 3}) {
    prep = mm.prepare_launch(
        ctx, gpu_a_, slot_a_,
        {sim::KernelArg::dev(entries[static_cast<size_t>(i)]),
         sim::KernelArg::access_hint(0, 0, kPage)});
    ASSERT_EQ(prep.outcome, MM::PrepareOutcome::Ready);
    dom_.sleep_for(vt::from_micros(10));
  }
  EXPECT_EQ(mm.stats().bulk_transfers, transfers) << "e0, e2, e3 must still be resident";

  transfers = mm.stats().bulk_transfers;
  prep = mm.prepare_launch(
      ctx, gpu_a_, slot_a_,
      {sim::KernelArg::dev(entries[1]), sim::KernelArg::access_hint(0, 0, kPage)});
  ASSERT_EQ(prep.outcome, MM::PrepareOutcome::Ready);
  EXPECT_GT(mm.stats().bulk_transfers, transfers) << "e1 must have been the victim";
}

// ---- Differential: paged vs entry-granular ----------------------------------

TEST_F(PagedEngineTest, PagedEngineMatchesEntryEngineByteForByteWithLessTraffic) {
  MM entry_mm(*rt_);  // entry-granular baseline (hints ignored)
  MM paged_mm(*rt_, paged_config());
  const ContextId e_ctx{1};
  const ContextId p_ctx{2};
  entry_mm.add_context(e_ctx);
  paged_mm.add_context(p_ctx);

  // The same operation sequence, with accurate AccessHints, against both
  // engines: hinted reads of a, hinted writes (device pokes) into b, a
  // partial host write, a full eviction, and a re-materializing launch.
  const auto drive = [&](MM& mm, ContextId ctx) {
    constexpr u64 kSize = 8 * kPage;
    const VirtualPtr a = alloc_filled(mm, ctx, kSize, std::byte{0xAA});
    const VirtualPtr b = alloc_filled(mm, ctx, kSize, std::byte{0xBB});
    auto prep = mm.prepare_launch(
        ctx, gpu_a_, slot_a_,
        {sim::KernelArg::dev(a), sim::KernelArg::dev_out(b),
         sim::KernelArg::access_hint(0, 0, 2 * kPage),
         sim::KernelArg::access_hint(1, kPage, kPage, /*written=*/true)});
    EXPECT_EQ(prep.outcome, MM::PrepareOutcome::Ready);
    std::vector<std::byte> poke(kPage, std::byte{0xCC});
    EXPECT_EQ(machine_.gpu(gpu_a_)->poke(prep.translated[1].as_ptr() + kPage, poke), Status::Ok);

    std::vector<std::byte> patch(512, std::byte{0xDD});
    EXPECT_EQ(mm.on_copy_h2d(ctx, a + 3 * kPage, patch, std::nullopt), Status::Ok);
    EXPECT_EQ(mm.swap_context(ctx), Status::Ok);

    prep = mm.prepare_launch(
        ctx, gpu_a_, slot_a_,
        {sim::KernelArg::dev(a), sim::KernelArg::dev(b),
         sim::KernelArg::access_hint(0, 3 * kPage, kPage),
         sim::KernelArg::access_hint(1, kPage, kPage)});
    EXPECT_EQ(prep.outcome, MM::PrepareOutcome::Ready);
    return std::pair{read_back(mm, ctx, a, kSize), read_back(mm, ctx, b, kSize)};
  };

  const u64 t0 = up_a() + down_a();
  const auto entry_result = drive(entry_mm, e_ctx);
  const u64 entry_traffic = up_a() + down_a() - t0;
  const auto paged_result = drive(paged_mm, p_ctx);
  const u64 paged_traffic = up_a() + down_a() - t0 - entry_traffic;

  EXPECT_EQ(entry_result.first, paged_result.first);
  EXPECT_EQ(entry_result.second, paged_result.second);
  EXPECT_LT(paged_traffic, entry_traffic);
  EXPECT_GT(paged_mm.stats().page_faults, 0u);
}

TEST_F(PagedEngineTest, CheckpointRestoreRoundTripsPagedContext) {
  MM mm(*rt_, paged_config());
  const ContextId ctx{1};
  mm.add_context(ctx);
  constexpr u64 kSize = 4 * kPage;
  const VirtualPtr p = alloc_filled(mm, ctx, kSize, std::byte{0x5A});

  auto prep = mm.prepare_launch(
      ctx, gpu_a_, slot_a_,
      {sim::KernelArg::dev(p), sim::KernelArg::access_hint(0, 2 * kPage, kPage, /*written=*/true)});
  ASSERT_EQ(prep.outcome, MM::PrepareOutcome::Ready);
  std::vector<std::byte> poke(kPage, std::byte{0x5B});
  ASSERT_EQ(machine_.gpu(gpu_a_)->poke(prep.translated[0].as_ptr() + 2 * kPage, poke), Status::Ok);
  ASSERT_EQ(mm.checkpoint(ctx), Status::Ok);

  // Restore into a second context; paged metadata (TLB, page stamps) is
  // performance-only state the image never carries.
  auto image = mm.export_image(ctx);
  ASSERT_TRUE(image.has_value());
  const ContextId ctx2{2};
  mm.add_context(ctx2);
  ASSERT_EQ(mm.import_image(ctx2, image.value()), Status::Ok);

  prep = mm.prepare_launch(ctx2, gpu_b_, slot_b_,
                           {sim::KernelArg::dev(p), sim::KernelArg::access_hint(0, 0, kPage)});
  ASSERT_EQ(prep.outcome, MM::PrepareOutcome::Ready);
  auto out = read_back(mm, ctx2, p, kSize);
  for (u64 i = 0; i < kSize; ++i) {
    const std::byte want =
        (i >= 2 * kPage && i < 3 * kPage) ? std::byte{0x5B} : std::byte{0x5A};
    ASSERT_EQ(out[i], want) << "byte " << i;
  }
}

// ---- Harness-level differential + determinism -------------------------------

TEST(PagingScenario, FaultFreeOutcomesMatchEntryEngine) {
  chaos::ScenarioConfig config;
  config.tenants = 4;
  config.kernels_per_tenant = 5;
  config.plan.seed = 5;  // no events: both engines must agree exactly

  chaos::ScenarioConfig paged = config;
  paged.paging = true;
  const chaos::ScenarioResult entry_run = chaos::run_scenario(config);
  const chaos::ScenarioResult paged_run = chaos::run_scenario(paged);

  ASSERT_EQ(entry_run.outcomes.size(), paged_run.outcomes.size());
  for (size_t i = 0; i < entry_run.outcomes.size(); ++i) {
    EXPECT_EQ(entry_run.outcomes[i], paged_run.outcomes[i]) << "tenant " << i;
    EXPECT_EQ(paged_run.outcomes[i].final_status, Status::Ok);
    EXPECT_TRUE(paged_run.outcomes[i].data_ok);
  }
  EXPECT_TRUE(entry_run.violations.empty());
  EXPECT_TRUE(paged_run.violations.empty());
}

TEST(PagingScenario, ChaosReplayIsBitIdentical) {
  chaos::ScenarioConfig config;
  config.tenants = 4;
  config.paging = true;
  config.plan = chaos::FaultPlan::random(/*seed=*/9, config.nodes, config.gpus_per_node,
                                         /*event_count=*/8, vt::from_millis(30));
  const chaos::ScenarioResult first = chaos::run_scenario(config);
  const chaos::ScenarioResult second = chaos::run_scenario(config);
  EXPECT_TRUE(first.deterministic_equal(second)) << first.diff(second);
  EXPECT_TRUE(first.violations.empty());
}

TEST(PagingScenario, LiveMigrationPreservesDataUnderPaging) {
  chaos::ScenarioConfig config;
  config.tenants = 4;
  config.paging = true;
  config.plan.seed = 13;
  for (int m = 0; m < 2; ++m) {
    chaos::FaultEvent ev;
    ev.kind = chaos::FaultKind::Migrate;
    ev.at = vt::from_millis(5.0 + 8.0 * m);
    ev.node = m % config.nodes;
    ev.count = 0;  // least-loaded peer
    config.plan.add(ev);
  }
  const chaos::ScenarioResult result = chaos::run_scenario(config);
  EXPECT_TRUE(result.violations.empty());
  for (const auto& t : result.outcomes) {
    EXPECT_EQ(t.final_status, Status::Ok) << "tenant " << t.tenant;
    EXPECT_TRUE(t.data_ok) << "tenant " << t.tenant;
  }
}

}  // namespace
}  // namespace gpuvm::core
