// Tests for the extended workload pool (KM, LUD, SRAD): correctness on
// both backends, like the Table-2 programs.
#include <gtest/gtest.h>

#include "core/direct_api.hpp"
#include "core/frontend.hpp"
#include "core/runtime.hpp"
#include "sim/machine.hpp"
#include "workloads/workload.hpp"

namespace gpuvm::workloads {
namespace {

class ExtendedWorkload : public ::testing::TestWithParam<std::string> {};

TEST_P(ExtendedWorkload, RunsCorrectlyOnBothBackends) {
  vt::Domain dom;
  vt::AttachGuard guard(dom);
  sim::SimMachine machine(dom, sim::SimParams{1024});
  machine.add_gpu(sim::tesla_c2050(machine.params()));
  register_extended_kernels(machine.kernels());
  cudart::CudaRt rt(machine);
  core::Runtime runtime(rt);

  const Workload* app = find_extended_workload(GetParam());
  ASSERT_NE(app, nullptr);

  AppContext ctx;
  ctx.dom = &dom;
  ctx.params = machine.params();

  core::DirectApi direct(rt);
  ctx.api = &direct;
  const vt::StopWatch watch(dom);
  auto result = app->run(ctx);
  EXPECT_TRUE(result.success()) << result.detail;
  EXPECT_EQ(result.kernel_launches, app->expected_kernel_calls());
  EXPECT_GT(watch.elapsed_seconds(), 2.0);
  EXPECT_LT(watch.elapsed_seconds(), 8.0);

  core::FrontendApi via_daemon(runtime.connect());
  ctx.api = &via_daemon;
  result = app->run(ctx);
  EXPECT_TRUE(result.success()) << result.detail;
}

INSTANTIATE_TEST_SUITE_P(Pool, ExtendedWorkload, ::testing::Values("KM", "LUD", "SRAD"));

TEST(ExtendedPool, DisjointFromTable2) {
  EXPECT_EQ(extended_workload_names().size(), 3u);
  for (const auto& name : extended_workload_names()) {
    EXPECT_EQ(find_workload(name), nullptr);  // not in the Table-2 catalog
    EXPECT_NE(find_extended_workload(name), nullptr);
  }
  EXPECT_EQ(find_extended_workload("VA"), nullptr);
}

}  // namespace
}  // namespace gpuvm::workloads
