// Unit tests for the device cost model (sim/gpu_spec.hpp): transfer and
// kernel timing math, memory scaling, and the relative card characteristics
// the experiments depend on.
#include "sim/gpu_spec.hpp"

#include <gtest/gtest.h>

namespace gpuvm::sim {
namespace {

TEST(GpuSpec, TransferTimeScalesWithBytesAndMemScale) {
  const SimParams unit{1};
  const GpuSpec spec = tesla_c2050(unit);
  // 55 MB over 5.5 GB/s = 10 ms (+10 us latency).
  const auto t = transfer_time(spec, unit, 55'000'000);
  EXPECT_NEAR(vt::to_seconds(t), 0.010 + 10e-6, 1e-6);

  // With mem_scale 1000, the same modeled duration needs 1000x fewer bytes.
  const SimParams scaled{1000};
  const auto t2 = transfer_time(spec, scaled, 55'000);
  EXPECT_NEAR(vt::to_seconds(t2), 0.010 + 10e-6, 1e-6);
}

TEST(GpuSpec, KernelTimeTakesTheBindingResource) {
  const GpuSpec spec = test_gpu();  // 100 GFLOPS, 50 GB/s
  // Compute bound: 1e9 flops -> 10 ms.
  EXPECT_NEAR(vt::to_seconds(kernel_time(spec, {1e9, 0.0})), 0.010 + 1e-6, 1e-6);
  // Memory bound: 1e9 bytes at 50 GB/s = 20 ms > 10 ms of compute.
  EXPECT_NEAR(vt::to_seconds(kernel_time(spec, {1e9, 1e9})), 0.020 + 1e-6, 1e-6);
}

TEST(GpuSpec, LaunchOverheadAlwaysApplies) {
  const GpuSpec spec = test_gpu();
  const auto t = kernel_time(spec, {0.0, 0.0});
  EXPECT_EQ(t, vt::from_micros(spec.launch_overhead_us));
}

TEST(GpuSpec, PaperCardsOrderedBySpeedAndMemory) {
  const SimParams params{1024};
  const GpuSpec c2050 = tesla_c2050(params);
  const GpuSpec c1060 = tesla_c1060(params);
  const GpuSpec quadro = quadro_2000(params);
  // Speeds: C2050 > C1060 > Quadro 2000 (drives Figures 6 and 9).
  EXPECT_GT(c2050.compute_power(), c1060.compute_power());
  EXPECT_GT(c1060.compute_power(), quadro.compute_power());
  // Memories: C1060 4 GiB > C2050 3 GiB > Quadro 1 GiB (scaled).
  EXPECT_GT(c1060.memory_bytes, c2050.memory_bytes);
  EXPECT_GT(c2050.memory_bytes, quadro.memory_bytes);
  // The C2050/C1060 speed ratio stays near the peak-rate ratio (~0.8-0.9),
  // which Figure 6's balance depends on.
  const double ratio = c1060.compute_power() / c2050.compute_power();
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 0.95);
}

TEST(GpuSpec, ScaleBytesFloors) {
  const SimParams params{1024};
  EXPECT_EQ(params.scale_bytes(4096), 4u);
  EXPECT_EQ(params.scale_bytes(1000), 0u);  // caller guards minimums
}

}  // namespace
}  // namespace gpuvm::sim
