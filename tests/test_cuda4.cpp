// Tests for CUDA 4.0 support mode (paper section 4.8): shared application
// contexts (data sharing across threads, same-device mapping) and direct
// GPU-to-GPU transfers for migration. Also covers the pitched/2D memory
// API additions.
#include <gtest/gtest.h>

#include <vector>

#include "core/direct_api.hpp"
#include "core/frontend.hpp"
#include "core/runtime.hpp"
#include "sim/machine.hpp"

namespace gpuvm::core {
namespace {

class Cuda4Test : public ::testing::Test {
 protected:
  Cuda4Test() : guard_(dom_), machine_(dom_, sim::SimParams{1}) {
    machine_.add_gpu(sim::test_gpu(1 << 20));
    machine_.add_gpu(sim::test_gpu(1 << 20));
    rt_ = std::make_unique<cudart::CudaRt>(machine_, cudart::CudaRtConfig{4 * 1024, 8});

    sim::KernelDef addone;
    addone.name = "addone";
    addone.body = [](sim::KernelExecContext& kc) {
      for (auto& v : kc.buffer<float>(0)) v += 1.0f;
      return Status::Ok;
    };
    addone.cost = sim::per_thread_cost(1.0, 4.0);
    machine_.kernels().add(addone);
  }

  void start(bool cuda4) {
    RuntimeConfig config;
    config.cuda4_semantics = cuda4;
    config.scheduler.vgpus_per_device = 2;
    runtime_ = std::make_unique<Runtime>(*rt_, config);
  }

  vt::Domain dom_;
  vt::AttachGuard guard_;
  sim::SimMachine machine_;
  std::unique_ptr<cudart::CudaRt> rt_;
  std::unique_ptr<Runtime> runtime_;
};

TEST_F(Cuda4Test, ThreadsOfOneApplicationShareAContext) {
  start(true);
  ConnectOptions options;
  options.application_id = 42;
  FrontendApi thread_a(runtime_->connect(), options);
  FrontendApi thread_b(runtime_->connect(), options);
  ASSERT_TRUE(thread_a.connected());
  ASSERT_TRUE(thread_b.connected());
  // Same daemon context id: one CUDA context per application.
  EXPECT_EQ(thread_a.connection_id().value, thread_b.connection_id().value);

  // Thread A's buffer is visible to thread B (shared virtual addresses).
  ASSERT_EQ(thread_a.register_kernels({"addone"}), Status::Ok);
  auto buf = thread_a.malloc(32 * sizeof(float));
  ASSERT_TRUE(buf.has_value());
  std::vector<float> data(32, 1.0f);
  ASSERT_EQ(thread_a.copy_in(buf.value(), data), Status::Ok);

  ASSERT_EQ(thread_b.register_kernels({"addone"}), Status::Ok);
  ASSERT_EQ(thread_b.launch("addone", {{1, 1, 1}, {32, 1, 1}},
                            {sim::KernelArg::dev(buf.value())}),
            Status::Ok);
  std::vector<float> out(32);
  ASSERT_EQ(thread_a.copy_out(out, buf.value()), Status::Ok);
  for (float v : out) EXPECT_EQ(v, 2.0f);
}

TEST_F(Cuda4Test, DifferentApplicationsStayIsolated) {
  start(true);
  ConnectOptions app1;
  app1.application_id = 1;
  ConnectOptions app2;
  app2.application_id = 2;
  FrontendApi a(runtime_->connect(), app1);
  FrontendApi b(runtime_->connect(), app2);
  EXPECT_NE(a.connection_id().value, b.connection_id().value);

  auto buf = a.malloc(64);
  ASSERT_TRUE(buf.has_value());
  // b cannot touch a's virtual addresses.
  std::vector<std::byte> bytes(64);
  EXPECT_EQ(b.memcpy_d2h(bytes, buf.value(), 64), Status::ErrorNoValidPte);
}

TEST_F(Cuda4Test, WithoutCuda4ModeAppIdsAreIgnored) {
  start(false);
  ConnectOptions options;
  options.application_id = 42;
  FrontendApi a(runtime_->connect(), options);
  FrontendApi b(runtime_->connect(), options);
  EXPECT_NE(a.connection_id().value, b.connection_id().value);  // CUDA 3.2 rules
}

TEST_F(Cuda4Test, SharedContextSurvivesFirstThreadExit) {
  start(true);
  ConnectOptions options;
  options.application_id = 7;
  auto thread_a = std::make_unique<FrontendApi>(runtime_->connect(), options);
  FrontendApi thread_b(runtime_->connect(), options);
  auto buf = thread_a->malloc(64);
  ASSERT_TRUE(buf.has_value());
  std::vector<std::byte> data(64, std::byte{0x3c});
  ASSERT_EQ(thread_a->memcpy_h2d(buf.value(), data), Status::Ok);

  thread_a.reset();  // first thread exits; context must survive

  std::vector<std::byte> out(64);
  ASSERT_EQ(thread_b.memcpy_d2h(out, buf.value(), 64), Status::Ok);
  EXPECT_EQ(out, data);
}

TEST_F(Cuda4Test, MigrationUsesDirectPeerTransfer) {
  // Materialize on GPU 0, then force re-materialization on GPU 1: with
  // cuda4 semantics the entry moves with one GPU-to-GPU copy.
  start(true);
  MemoryManager& mm = runtime_->memory();
  ContextId ctx{100};
  mm.add_context(ctx);
  ClientId slot0 = rt_->create_client();
  (void)rt_->set_device(slot0, 0);
  ClientId slot1 = rt_->create_client();
  (void)rt_->set_device(slot1, 1);

  auto p = mm.on_malloc(ctx, 64 * sizeof(float));
  ASSERT_TRUE(p.has_value());
  std::vector<float> data(64, 9.0f);
  ASSERT_EQ(mm.on_copy_h2d(ctx, p.value(), std::as_bytes(std::span(data)), std::nullopt),
            Status::Ok);
  ASSERT_EQ(mm.prepare_launch(ctx, machine_.all_gpus()[0], slot0,
                              {sim::KernelArg::dev(p.value())})
                .outcome,
            MemoryManager::PrepareOutcome::Ready);

  auto prep = mm.prepare_launch(ctx, machine_.all_gpus()[1], slot1,
                                {sim::KernelArg::dev(p.value())});
  ASSERT_EQ(prep.outcome, MemoryManager::PrepareOutcome::Ready);
  EXPECT_GE(mm.stats().peer_copies, 1u);
  EXPECT_EQ(mm.stats().swapped_entries, 0u);  // no swap round trip

  std::vector<float> out(64);
  ASSERT_EQ(machine_.gpu(machine_.all_gpus()[1])
                ->peek(std::as_writable_bytes(std::span(out)), prep.translated[0].as_ptr(),
                       64 * sizeof(float)),
            Status::Ok);
  EXPECT_EQ(out, data);

  rt_->destroy_client(slot0);
  rt_->destroy_client(slot1);
}

TEST_F(Cuda4Test, PeerTransferFallsBackToSwapWhenSourceDied) {
  start(true);
  MemoryManager& mm = runtime_->memory();
  ContextId ctx{100};
  mm.add_context(ctx);
  ClientId slot0 = rt_->create_client();
  (void)rt_->set_device(slot0, 0);
  ClientId slot1 = rt_->create_client();
  (void)rt_->set_device(slot1, 1);

  auto p = mm.on_malloc(ctx, 64);
  ASSERT_TRUE(p.has_value());
  std::vector<std::byte> data(64, std::byte{5});
  ASSERT_EQ(mm.on_copy_h2d(ctx, p.value(), data, std::nullopt), Status::Ok);
  ASSERT_EQ(mm.prepare_launch(ctx, machine_.all_gpus()[0], slot0,
                              {sim::KernelArg::dev(p.value())})
                .outcome,
            MemoryManager::PrepareOutcome::Ready);
  machine_.fail_gpu(machine_.all_gpus()[0]);

  auto prep = mm.prepare_launch(ctx, machine_.all_gpus()[1], slot1,
                                {sim::KernelArg::dev(p.value())});
  ASSERT_EQ(prep.outcome, MemoryManager::PrepareOutcome::Ready);
  EXPECT_EQ(mm.stats().peer_copies, 0u);  // source dead: swap-recovery path
  std::vector<std::byte> out(64);
  ASSERT_EQ(mm.on_copy_d2h(ctx, out, p.value(), 64), Status::Ok);
  EXPECT_EQ(out, data);

  rt_->destroy_client(slot0);
  rt_->destroy_client(slot1);
}

// ---- Pitched / 2D memory API -----------------------------------------------

class Memcpy2DTest : public ::testing::TestWithParam<bool> {};

TEST_P(Memcpy2DTest, PitchedRoundTripOnBothBackends) {
  vt::Domain dom;
  vt::AttachGuard guard(dom);
  sim::SimMachine machine(dom, sim::SimParams{1});
  machine.add_gpu(sim::test_gpu(1 << 20));
  cudart::CudaRt rt(machine, cudart::CudaRtConfig{4 * 1024, 8});
  Runtime runtime(rt);

  std::unique_ptr<GpuApi> api;
  if (GetParam()) {
    api = std::make_unique<FrontendApi>(runtime.connect());
  } else {
    api = std::make_unique<DirectApi>(rt);
  }

  constexpr u64 kWidth = 100;  // bytes per row
  constexpr u64 kHeight = 8;
  auto ptr = api->malloc_pitch(kWidth, kHeight);
  ASSERT_TRUE(ptr.has_value());
  const u64 pitch = ptr->pitch;
  EXPECT_EQ(pitch, 256u);

  std::vector<std::byte> src(kWidth * kHeight);
  for (size_t i = 0; i < src.size(); ++i) src[i] = static_cast<std::byte>(i % 251);
  ASSERT_EQ(api->memcpy2d_h2d(ptr->ptr, pitch, src, kWidth, kWidth, kHeight), Status::Ok);

  std::vector<std::byte> dst(kWidth * kHeight, std::byte{0});
  ASSERT_EQ(api->memcpy2d_d2h(dst, kWidth, ptr->ptr, pitch, kWidth, kHeight), Status::Ok);
  EXPECT_EQ(dst, src);

  // Bad geometry rejected.
  EXPECT_EQ(api->memcpy2d_h2d(ptr->ptr, pitch, src, kWidth, kWidth + 1, kHeight),
            Status::ErrorInvalidValue);
}

INSTANTIATE_TEST_SUITE_P(Backends, Memcpy2DTest, ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? std::string("gpuvm") : std::string("bare");
                         });

}  // namespace
}  // namespace gpuvm::core
