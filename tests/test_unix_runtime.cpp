// End-to-end over real AF_UNIX sockets: the gpuvm daemon listens on a
// filesystem socket (the gVirtuS deployment shape) and applications connect
// through the same wire protocol the in-process channels use.
#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <vector>

#include "core/frontend.hpp"
#include "core/runtime.hpp"
#include "sim/machine.hpp"
#include "transport/unix_socket.hpp"

namespace gpuvm::core {
namespace {

class UnixRuntimeTest : public ::testing::Test {
 protected:
  UnixRuntimeTest() : guard_(dom_), machine_(dom_, sim::SimParams{1}) {
    machine_.add_gpu(sim::test_gpu(1 << 20));
    rt_ = std::make_unique<cudart::CudaRt>(machine_, cudart::CudaRtConfig{4 * 1024, 8});
    runtime_ = std::make_unique<Runtime>(*rt_);

    sim::KernelDef doubler;
    doubler.name = "doubler";
    doubler.body = [](sim::KernelExecContext& kc) {
      for (auto& v : kc.buffer<float>(0)) v *= 2.0f;
      return Status::Ok;
    };
    doubler.cost = sim::per_thread_cost(1.0, 4.0);
    machine_.kernels().add(doubler);

    path_ = "/tmp/gpuvm_daemon_" + std::to_string(::getpid()) + ".sock";
    auto server = transport::UnixSocketServer::listen(
        path_, [this](std::unique_ptr<transport::MessageChannel> channel) {
          runtime_->serve_channel(std::move(channel));
        });
    if (server.has_value()) server_ = std::move(server.value());
  }

  void SetUp() override { ASSERT_NE(server_, nullptr) << "listen failed"; }

  ~UnixRuntimeTest() override {
    if (server_ != nullptr) server_->stop();
  }

  vt::Domain dom_;
  vt::AttachGuard guard_;
  sim::SimMachine machine_;
  std::unique_ptr<cudart::CudaRt> rt_;
  std::unique_ptr<Runtime> runtime_;
  std::string path_;
  std::unique_ptr<transport::UnixSocketServer> server_;
};

TEST_F(UnixRuntimeTest, FullApplicationOverRealSockets) {
  auto channel = transport::unix_connect(path_);
  ASSERT_TRUE(channel.has_value());
  FrontendApi api(std::move(channel.value()));
  ASSERT_TRUE(api.connected());
  EXPECT_GT(api.device_count(), 0);

  ASSERT_EQ(api.register_kernels({"doubler"}), Status::Ok);
  auto ptr = api.malloc(64 * sizeof(float));
  ASSERT_TRUE(ptr.has_value());
  std::vector<float> data(64, 21.0f);
  ASSERT_EQ(api.copy_in(ptr.value(), data), Status::Ok);
  ASSERT_EQ(api.launch("doubler", {{1, 1, 1}, {64, 1, 1}}, {sim::KernelArg::dev(ptr.value())}),
            Status::Ok);
  std::vector<float> out(64);
  ASSERT_EQ(api.copy_out(out, ptr.value()), Status::Ok);
  for (float v : out) EXPECT_EQ(v, 42.0f);
  ASSERT_EQ(api.free(ptr.value()), Status::Ok);
}

TEST_F(UnixRuntimeTest, ConcurrentSocketClientsShareTheGpu) {
  std::atomic<int> good{0};
  {
    dom_.hold();
    std::vector<vt::Thread> clients;
    for (int c = 0; c < 6; ++c) {
      clients.emplace_back(dom_, [&, c] {
        auto channel = transport::unix_connect(path_);
        if (!channel.has_value()) return;
        FrontendApi api(std::move(channel.value()));
        if (!api.connected()) return;
        if (!ok(api.register_kernels({"doubler"}))) return;
        auto ptr = api.malloc(32 * sizeof(float));
        if (!ptr) return;
        std::vector<float> data(32, static_cast<float>(c + 1));
        if (!ok(api.copy_in(ptr.value(), data))) return;
        for (int i = 0; i < 3; ++i) {
          if (!ok(api.launch("doubler", {{1, 1, 1}, {32, 1, 1}},
                             {sim::KernelArg::dev(ptr.value())}))) {
            return;
          }
        }
        std::vector<float> out(32);
        if (!ok(api.copy_out(out, ptr.value()))) return;
        for (float v : out) {
          if (v != static_cast<float>(c + 1) * 8.0f) return;
        }
        good.fetch_add(1);
      });
    }
    dom_.unhold();
  }
  EXPECT_EQ(good.load(), 6);
  EXPECT_EQ(runtime_->stats().connections, 6u);
}

TEST_F(UnixRuntimeTest, DisconnectReclaimsResources) {
  {
    auto channel = transport::unix_connect(path_);
    ASSERT_TRUE(channel.has_value());
    FrontendApi api(std::move(channel.value()));
    ASSERT_TRUE(api.connected());
    ASSERT_TRUE(api.malloc(4096).has_value());
  }
  runtime_->drain();
  EXPECT_EQ(machine_.gpu(machine_.all_gpus()[0])->used_bytes(), 0u);
}

}  // namespace
}  // namespace gpuvm::core
