// Tests for the Table-2 workloads: every program runs correctly on the bare
// runtime and through gpuvm, issues its documented kernel-call count, and
// lands in its documented runtime band on a (mem-scaled) Tesla C2050.
#include "workloads/workload.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/direct_api.hpp"
#include "core/frontend.hpp"
#include "core/runtime.hpp"
#include "cudart/cudart.hpp"
#include "sim/machine.hpp"
#include "workloads/batch.hpp"

namespace gpuvm::workloads {
namespace {

class WorkloadEnv {
 public:
  WorkloadEnv() : guard_(dom_), machine_(dom_, sim::SimParams{1024}) {
    machine_.add_gpu(sim::tesla_c2050(machine_.params()));
    register_all_kernels(machine_.kernels());
    rt_ = std::make_unique<cudart::CudaRt>(machine_);
  }

  AppResult run_direct(const std::string& name, double cpu_fraction = 0.0) {
    core::DirectApi api(*rt_);
    AppContext ctx;
    ctx.dom = &dom_;
    ctx.api = &api;
    ctx.params = machine_.params();
    ctx.cpu_fraction = cpu_fraction;
    return find_workload(name)->run(ctx);
  }

  vt::Domain dom_;
  vt::AttachGuard guard_;
  sim::SimMachine machine_;
  std::unique_ptr<cudart::CudaRt> rt_;
};

TEST(WorkloadCatalog, ThirteenProgramsSplitShortAndLong) {
  EXPECT_EQ(all_workload_names().size(), 13u);
  EXPECT_EQ(short_running_names().size(), 10u);
  EXPECT_EQ(long_running_names().size(), 3u);
  EXPECT_EQ(find_workload("NOPE"), nullptr);
}

TEST(WorkloadCatalog, KernelCallCountsMatchTable2) {
  const std::map<std::string, int> expected{
      {"BP", 40},  {"BFS", 24},  {"HS", 1},    {"NW", 256}, {"SP", 1},
      {"MT", 816}, {"PR", 801},  {"SC", 3300}, {"BS-S", 256}, {"VA", 1},
      {"MM-S", 200}, {"MM-L", 10}, {"BS-L", 256}};
  for (const auto& [name, calls] : expected) {
    const Workload* app = find_workload(name);
    ASSERT_NE(app, nullptr) << name;
    EXPECT_EQ(app->expected_kernel_calls(), calls) << name;
  }
}

class EveryWorkload : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryWorkload, RunsCorrectlyOnBareRuntime) {
  WorkloadEnv env;
  const std::string name = GetParam();
  const vt::StopWatch watch(env.dom_);
  const AppResult result = env.run_direct(name);
  EXPECT_EQ(result.status, Status::Ok) << result.detail;
  EXPECT_TRUE(result.verified) << result.detail;
  EXPECT_EQ(result.kernel_launches, find_workload(name)->expected_kernel_calls());

  // Runtime bands from Table 2 (on a C2050): short 3-5 s, long 30-90 s.
  // Allow slack for transfer time and interposition-free variance.
  const double seconds = watch.elapsed_seconds();
  if (find_workload(name)->long_running()) {
    // MM-S is "long-running" via its injected CPU phases; with fraction 0
    // it can undershoot the band, so only check the upper bound.
    EXPECT_LT(seconds, 95.0) << name;
    EXPECT_GT(seconds, 8.0) << name;
  } else {
    EXPECT_GT(seconds, 2.0) << name << " took " << seconds;
    EXPECT_LT(seconds, 7.0) << name << " took " << seconds;
  }
}

TEST_P(EveryWorkload, RunsCorrectlyThroughGpuvm) {
  WorkloadEnv env;
  core::Runtime runtime(*env.rt_);
  core::FrontendApi api(runtime.connect());
  AppContext ctx;
  ctx.dom = &env.dom_;
  ctx.api = &api;
  ctx.params = env.machine_.params();
  const AppResult result = find_workload(GetParam())->run(ctx);
  EXPECT_EQ(result.status, Status::Ok) << result.detail;
  EXPECT_TRUE(result.verified) << result.detail;
}

INSTANTIATE_TEST_SUITE_P(Table2, EveryWorkload,
                         ::testing::Values("BP", "BFS", "HS", "NW", "SP", "MT", "PR", "SC",
                                           "BS-S", "VA", "MM-S", "MM-L", "BS-L"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(WorkloadTiming, CpuFractionExtendsMatMul) {
  WorkloadEnv env;
  const vt::StopWatch watch(env.dom_);
  ASSERT_TRUE(env.run_direct("MM-L", 0.0).success());
  const double base = watch.elapsed_seconds();
  const vt::StopWatch watch2(env.dom_);
  ASSERT_TRUE(env.run_direct("MM-L", 1.0).success());
  const double with_cpu = watch2.elapsed_seconds();
  // CPU fraction 1 roughly doubles the job (GPU time + equal CPU time).
  EXPECT_GT(with_cpu, 1.7 * base);
  EXPECT_LT(with_cpu, 2.3 * base);
}

TEST(WorkloadTiming, MmlFootprintConflictsBeyondTwoJobs) {
  // "We set the data set size so to have conflicting memory requirements
  // when more than two jobs are mapped onto the same GPU."
  WorkloadEnv env;
  const u64 capacity = env.machine_.gpu(env.machine_.all_gpus()[0])->capacity_bytes();
  // MM-L footprint: 3 matrices of (10000^2 * 4 / 1024) bytes.
  const u64 footprint = 3 * (10000ull * 10000 * 4 / 1024);
  EXPECT_LT(2 * footprint, capacity);
  EXPECT_GT(3 * footprint, capacity);
}

TEST(BatchRunner, RandomBatchDrawsFromPool) {
  const auto jobs = BatchRunner::random_batch(short_running_names(), 16, 7, 0.5);
  ASSERT_EQ(jobs.size(), 16u);
  for (const auto& job : jobs) {
    EXPECT_NE(find_workload(job.workload), nullptr);
    EXPECT_EQ(job.cpu_fraction, 0.5);
  }
  // Deterministic by seed.
  const auto again = BatchRunner::random_batch(short_running_names(), 16, 7, 0.5);
  for (size_t i = 0; i < jobs.size(); ++i) EXPECT_EQ(jobs[i].workload, again[i].workload);
}

TEST(BatchRunner, ConcurrentBatchThroughGpuvmCompletes) {
  WorkloadEnv env;
  core::Runtime runtime(*env.rt_);
  BatchRunner runner(env.dom_, env.machine_.params(),
                     [&](const JobSpec&, double hint) {
                       core::ConnectOptions options;
                       options.job_cost_hint_seconds = hint;
                       return std::make_unique<core::FrontendApi>(runtime.connect(), options);
                     });
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back({"HS", 0.0, static_cast<u64>(i + 1), true});
  }
  const BatchOutcome outcome = runner.run(jobs);
  EXPECT_TRUE(outcome.all_good());
  EXPECT_EQ(outcome.per_job_seconds.size(), 4u);
  EXPECT_GT(outcome.total_seconds, 0.0);
  EXPECT_LE(outcome.avg_seconds, outcome.total_seconds);
}

TEST(BatchRunner, BareRuntimeBatchMatchesGpuvmResults) {
  // Apples-to-apples: the same jobs on both backends produce correct
  // results (the evaluation's precondition for comparing their times).
  WorkloadEnv env;
  core::Runtime runtime(*env.rt_);
  const std::vector<JobSpec> jobs{{"MT", 0.0, 3, true}, {"PR", 0.0, 4, true}};

  BatchRunner direct(env.dom_, env.machine_.params(), [&](const JobSpec&, double) {
    return std::make_unique<core::DirectApi>(*env.rt_);
  });
  EXPECT_TRUE(direct.run(jobs).all_good());

  BatchRunner via_gpuvm(env.dom_, env.machine_.params(), [&](const JobSpec&, double) {
    return std::make_unique<core::FrontendApi>(runtime.connect());
  });
  EXPECT_TRUE(via_gpuvm.run(jobs).all_good());
}

}  // namespace
}  // namespace gpuvm::workloads
