// Tests for serializable context checkpoints (core/checkpoint.hpp) -- the
// BLCR-integration substitute: full context state survives serialization,
// node restart, and cross-node migration.
#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/machine.hpp"

namespace gpuvm::core {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  CheckpointTest() : guard_(dom_), machine_(dom_, sim::SimParams{1}) {
    machine_.add_gpu(sim::test_gpu(1 << 20));
    rt_ = std::make_unique<cudart::CudaRt>(machine_, cudart::CudaRtConfig{4 * 1024, 8});
    mm_ = std::make_unique<MemoryManager>(*rt_);
    slot_ = rt_->create_client();

    sim::KernelDef addone;
    addone.name = "addone";
    addone.body = [](sim::KernelExecContext& kc) {
      for (auto& v : kc.buffer<float>(0)) v += 1.0f;
      return Status::Ok;
    };
    addone.cost = sim::per_thread_cost(1.0, 4.0);
    machine_.kernels().add(addone);

    mm_->add_context(ctx_);
  }

  vt::Domain dom_;
  vt::AttachGuard guard_;
  sim::SimMachine machine_;
  std::unique_ptr<cudart::CudaRt> rt_;
  std::unique_ptr<MemoryManager> mm_;
  ClientId slot_;
  ContextId ctx_{1};
};

TEST_F(CheckpointTest, ImageRoundTripsMetadataAndData) {
  auto a = mm_->on_malloc(ctx_, 256);
  auto b = mm_->on_malloc(ctx_, 1024);
  ASSERT_TRUE(a && b);
  std::vector<std::byte> da(256, std::byte{0x11});
  std::vector<std::byte> db(1024, std::byte{0x22});
  ASSERT_EQ(mm_->on_copy_h2d(ctx_, a.value(), da, std::nullopt), Status::Ok);
  ASSERT_EQ(mm_->on_copy_h2d(ctx_, b.value(), db, std::nullopt), Status::Ok);

  auto image = serialize_context(*mm_, ctx_);
  ASSERT_TRUE(image.has_value());
  EXPECT_GT(image.value().size(), 256u + 1024u);  // data + metadata

  // Restore into a different context (e.g., after a node restart).
  ContextId restored{2};
  mm_->add_context(restored);
  ASSERT_EQ(restore_context(*mm_, restored, image.value()), Status::Ok);
  EXPECT_EQ(mm_->mem_usage(restored), 256u + 1024u);

  std::vector<std::byte> out(1024);
  ASSERT_EQ(mm_->on_copy_d2h(restored, std::span(out).first(256), a.value(), 256), Status::Ok);
  EXPECT_EQ(std::vector<std::byte>(out.begin(), out.begin() + 256), da);
  ASSERT_EQ(mm_->on_copy_d2h(restored, out, b.value(), 1024), Status::Ok);
  EXPECT_EQ(out, db);
}

TEST_F(CheckpointTest, SerializationSyncsDirtyDeviceState) {
  auto p = mm_->on_malloc(ctx_, 32 * sizeof(float));
  ASSERT_TRUE(p.has_value());
  std::vector<float> data(32, 1.0f);
  ASSERT_EQ(mm_->on_copy_h2d(ctx_, p.value(), std::as_bytes(std::span(data)), std::nullopt),
            Status::Ok);
  auto prep = mm_->prepare_launch(ctx_, machine_.all_gpus()[0], slot_,
                                  {sim::KernelArg::dev(p.value())});
  ASSERT_EQ(prep.outcome, MemoryManager::PrepareOutcome::Ready);
  ASSERT_EQ(rt_->launch_by_name(slot_, "addone", {{1, 1, 1}, {32, 1, 1}}, prep.translated),
            Status::Ok);
  // Device now holds 2.0f; the swap copy is stale until serialization syncs.
  auto image = serialize_context(*mm_, ctx_);
  ASSERT_TRUE(image.has_value());

  ContextId restored{2};
  mm_->add_context(restored);
  ASSERT_EQ(restore_context(*mm_, restored, image.value()), Status::Ok);
  std::vector<float> out(32);
  ASSERT_EQ(mm_->on_copy_d2h(restored, std::as_writable_bytes(std::span(out)), p.value(),
                             32 * sizeof(float)),
            Status::Ok);
  for (float v : out) EXPECT_EQ(v, 2.0f);
}

TEST_F(CheckpointTest, RestoredContextMaterializesAndRunsKernels) {
  auto p = mm_->on_malloc(ctx_, 32 * sizeof(float));
  ASSERT_TRUE(p.has_value());
  std::vector<float> data(32, 5.0f);
  ASSERT_EQ(mm_->on_copy_h2d(ctx_, p.value(), std::as_bytes(std::span(data)), std::nullopt),
            Status::Ok);
  auto image = serialize_context(*mm_, ctx_);
  ASSERT_TRUE(image.has_value());

  ContextId restored{2};
  mm_->add_context(restored);
  ASSERT_EQ(restore_context(*mm_, restored, image.value()), Status::Ok);
  auto prep = mm_->prepare_launch(restored, machine_.all_gpus()[0], slot_,
                                  {sim::KernelArg::dev(p.value())});
  ASSERT_EQ(prep.outcome, MemoryManager::PrepareOutcome::Ready);
  ASSERT_EQ(rt_->launch_by_name(slot_, "addone", {{1, 1, 1}, {32, 1, 1}}, prep.translated),
            Status::Ok);
  std::vector<float> out(32);
  ASSERT_EQ(mm_->on_copy_d2h(restored, std::as_writable_bytes(std::span(out)), p.value(),
                             32 * sizeof(float)),
            Status::Ok);
  for (float v : out) EXPECT_EQ(v, 6.0f);
}

TEST_F(CheckpointTest, NestedReferencesSurviveRestore) {
  auto child = mm_->on_malloc(ctx_, 64);
  auto parent = mm_->on_malloc(ctx_, sizeof(u64));
  ASSERT_TRUE(child && parent);
  ASSERT_EQ(mm_->register_nested(ctx_, parent.value(), {{0, child.value()}}), Status::Ok);

  auto image = serialize_context(*mm_, ctx_);
  ASSERT_TRUE(image.has_value());
  ContextId restored{2};
  mm_->add_context(restored);
  ASSERT_EQ(restore_context(*mm_, restored, image.value()), Status::Ok);

  // The restored parent's swap image still holds the child's virtual ptr.
  std::vector<u64> slot(1);
  ASSERT_EQ(mm_->on_copy_d2h(restored, std::as_writable_bytes(std::span(slot)), parent.value(),
                             sizeof(u64)),
            Status::Ok);
  EXPECT_EQ(slot[0], child.value());
}

TEST_F(CheckpointTest, NewAllocationsAfterRestoreDoNotCollide) {
  auto p = mm_->on_malloc(ctx_, 4096);
  ASSERT_TRUE(p.has_value());
  auto image = serialize_context(*mm_, ctx_);
  ASSERT_TRUE(image.has_value());

  // Restore into a *fresh memory manager* (simulated node restart): its
  // virtual-address allocator must skip past the restored addresses.
  MemoryManager fresh(*rt_);
  ContextId restored{7};
  fresh.add_context(restored);
  ASSERT_EQ(restore_context(fresh, restored, image.value()), Status::Ok);
  auto fresh_ptr = fresh.on_malloc(restored, 4096);
  ASSERT_TRUE(fresh_ptr.has_value());
  EXPECT_TRUE(fresh_ptr.value() >= p.value() + 4096 || fresh_ptr.value() + 4096 <= p.value());
}

TEST_F(CheckpointTest, CorruptImagesRejected) {
  ContextId restored{2};
  mm_->add_context(restored);
  std::vector<u8> junk(64, 0xab);
  EXPECT_EQ(restore_context(*mm_, restored, junk), Status::ErrorCheckpointNotFound);

  auto p = mm_->on_malloc(ctx_, 64);
  ASSERT_TRUE(p.has_value());
  auto image = serialize_context(*mm_, ctx_);
  ASSERT_TRUE(image.has_value());
  auto truncated = image.value();
  truncated.resize(truncated.size() / 2);
  EXPECT_EQ(restore_context(*mm_, restored, truncated), Status::ErrorCheckpointNotFound);
}

TEST_F(CheckpointTest, UnknownContextRejected) {
  EXPECT_FALSE(mm_->export_image(ContextId{99}).has_value());
  std::vector<u8> image;
  EXPECT_EQ(mm_->import_image(ContextId{99}, image), Status::ErrorNoValidPte);
}

}  // namespace
}  // namespace gpuvm::core
