// Unit tests for the vGPU scheduler (core/scheduler.hpp): slot creation,
// policy ordering (FCFS / SJF / credit-based), residency affinity,
// migration rules, topology changes, the SchedulingPolicy registry and
// time-quantum preemption (exclusive rotation, pump-driven expiry).
#include "core/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/machine.hpp"

namespace gpuvm::core {
namespace {

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() : guard_(dom_), machine_(dom_, sim::SimParams{1}) {
    rt_ = std::make_unique<cudart::CudaRt>(machine_, cudart::CudaRtConfig{4 * 1024, 8});
    mm_ = std::make_unique<MemoryManager>(*rt_);
  }

  GpuId add_gpu(double gflops = 100.0) {
    auto spec = sim::test_gpu(1 << 20);
    spec.effective_gflops = gflops;
    const GpuId id = machine_.add_gpu(spec);
    return id;
  }

  std::unique_ptr<Scheduler> make(int vgpus, const std::string& policy = "fcfs",
                                  bool migration = false) {
    Scheduler::Config config;
    config.vgpus_per_device = vgpus;
    config.policy = policy;
    config.enable_migration = migration;
    auto sched = std::make_unique<Scheduler>(*rt_, *mm_, config);
    const auto all = machine_.all_gpus();
    for (size_t i = 0; i < all.size(); ++i) {
      sched->add_device(static_cast<int>(i), all[i]);
    }
    return sched;
  }

  std::shared_ptr<Context> make_ctx(u64 id, double arrival_ms = 0.0, double hint = 0.0) {
    auto ctx = std::make_shared<Context>(ContextId{id}, dom_);
    ctx->arrival = vt::from_millis(arrival_ms);
    ctx->job_cost_hint_seconds = hint;
    mm_->add_context(ctx->id);
    return ctx;
  }

  vt::Domain dom_;
  vt::AttachGuard guard_;
  sim::SimMachine machine_;
  std::unique_ptr<cudart::CudaRt> rt_;
  std::unique_ptr<MemoryManager> mm_;
};

TEST_F(SchedulerTest, SlotsPerDeviceAndVgpuCount) {
  add_gpu();
  add_gpu();
  auto sched = make(4);
  EXPECT_EQ(sched->vgpu_count(), 8);
  sched->remove_device(machine_.all_gpus()[0]);
  EXPECT_EQ(sched->vgpu_count(), 4);
}

TEST_F(SchedulerTest, AcquireIsIdempotentAndReleaseFrees) {
  add_gpu();
  auto sched = make(1);
  auto ctx = make_ctx(1);
  auto b1 = sched->acquire(*ctx);
  ASSERT_TRUE(b1.has_value());
  auto b2 = sched->acquire(*ctx);
  ASSERT_TRUE(b2.has_value());
  EXPECT_EQ(b1.value().slot, b2.value().slot);
  EXPECT_TRUE(sched->context_bound(ctx->id));
  sched->release(*ctx);
  EXPECT_FALSE(sched->context_bound(ctx->id));
  EXPECT_EQ(sched->stats().binds, 1u);  // idempotent re-acquire is not a bind
  EXPECT_EQ(sched->stats().unbinds, 1u);
}

TEST_F(SchedulerTest, LoadBalancesAcrossDevices) {
  add_gpu();
  add_gpu();
  add_gpu();
  auto sched = make(2);
  std::vector<std::shared_ptr<Context>> ctxs;
  std::vector<GpuId> bound;
  for (u64 i = 1; i <= 6; ++i) {
    ctxs.push_back(make_ctx(i));
    auto b = sched->acquire(*ctxs.back());
    ASSERT_TRUE(b.has_value());
    bound.push_back(b.value().gpu);
  }
  const auto load = sched->load_by_gpu();
  for (const auto& [gpu, count] : load) EXPECT_EQ(count, 2) << gpu.value;
}

TEST_F(SchedulerTest, FcfsGrantsInArrivalOrder) {
  add_gpu();
  auto sched = make(1);
  auto first = make_ctx(1, 0.0);
  auto second = make_ctx(2, 1.0);
  auto holder = make_ctx(3, 2.0);
  ASSERT_TRUE(sched->acquire(*holder).has_value());  // occupy the only slot

  std::vector<u64> order;
  std::mutex order_mu;
  {
    dom_.hold();
    vt::Thread t2(dom_, [&] {
      auto b = sched->acquire(*second);
      ASSERT_TRUE(b.has_value());
      {
        std::scoped_lock lock(order_mu);
        order.push_back(2);
      }
      sched->release(*second);
    });
    vt::Thread t1(dom_, [&] {
      auto b = sched->acquire(*first);
      ASSERT_TRUE(b.has_value());
      {
        std::scoped_lock lock(order_mu);
        order.push_back(1);
      }
      sched->release(*first);
    });
    vt::Thread releaser(dom_, [&] {
      dom_.sleep_for(vt::from_millis(5));
      sched->release(*holder);
    });
    dom_.unhold();
  }
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1u);  // earlier arrival wins under FCFS
}

TEST_F(SchedulerTest, SjfPrefersShorterHints) {
  add_gpu();
  auto sched = make(1, "sjf");
  auto holder = make_ctx(1, 0.0, 1.0);
  auto long_job = make_ctx(2, 1.0, 100.0);
  auto short_job = make_ctx(3, 2.0, 5.0);  // arrives later but is shorter
  ASSERT_TRUE(sched->acquire(*holder).has_value());

  std::vector<u64> order;
  std::mutex order_mu;
  {
    dom_.hold();
    vt::Thread tl(dom_, [&] {
      ASSERT_TRUE(sched->acquire(*long_job).has_value());
      std::scoped_lock lock(order_mu);
      order.push_back(2);
    });
    vt::Thread ts(dom_, [&] {
      dom_.sleep_for(vt::from_micros(10));  // ensure the long job waits first
      ASSERT_TRUE(sched->acquire(*short_job).has_value());
      {
        std::scoped_lock lock(order_mu);
        order.push_back(3);
      }
      sched->release(*short_job);
    });
    vt::Thread releaser(dom_, [&] {
      dom_.sleep_for(vt::from_millis(5));
      sched->release(*holder);
    });
    dom_.unhold();
  }
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 3u);  // SJF: the short job overtakes
}

TEST_F(SchedulerTest, CreditBasedFavorsLeastServedContext) {
  add_gpu();
  auto sched = make(1, "credit");
  auto holder = make_ctx(1);
  auto heavy = make_ctx(2, 1.0);
  heavy->gpu_time_used_seconds = 50.0;  // already consumed a lot
  auto light = make_ctx(3, 2.0);
  light->gpu_time_used_seconds = 1.0;
  ASSERT_TRUE(sched->acquire(*holder).has_value());

  std::vector<u64> order;
  std::mutex order_mu;
  {
    dom_.hold();
    vt::Thread th(dom_, [&] {
      ASSERT_TRUE(sched->acquire(*heavy).has_value());
      std::scoped_lock lock(order_mu);
      order.push_back(2);
    });
    vt::Thread tl(dom_, [&] {
      dom_.sleep_for(vt::from_micros(10));
      ASSERT_TRUE(sched->acquire(*light).has_value());
      {
        std::scoped_lock lock(order_mu);
        order.push_back(3);
      }
      sched->release(*light);
    });
    vt::Thread releaser(dom_, [&] {
      dom_.sleep_for(vt::from_millis(5));
      sched->release(*holder);
    });
    dom_.unhold();
  }
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 3u);  // fair sharing: least GPU time first
}

TEST_F(SchedulerTest, DeadlineAwarePrefersEarliestDeadline) {
  add_gpu();
  auto sched = make(1, "deadline");
  auto holder = make_ctx(1);
  auto relaxed = make_ctx(2, 1.0);
  relaxed.get()->deadline_seconds = 100.0;
  auto urgent = make_ctx(3, 2.0);
  urgent.get()->deadline_seconds = 5.0;  // later arrival, earlier deadline
  auto hopeless_deadline = make_ctx(4, 0.5);  // no deadline: always last
  ASSERT_TRUE(sched->acquire(*holder).has_value());

  std::vector<u64> order;
  std::mutex order_mu;
  {
    dom_.hold();
    vt::Thread tr(dom_, [&] {
      ASSERT_TRUE(sched->acquire(*relaxed).has_value());
      {
        std::scoped_lock lock(order_mu);
        order.push_back(2);
      }
      sched->release(*relaxed);
    });
    vt::Thread tn(dom_, [&] {
      ASSERT_TRUE(sched->acquire(*hopeless_deadline).has_value());
      {
        std::scoped_lock lock(order_mu);
        order.push_back(4);
      }
      sched->release(*hopeless_deadline);
    });
    vt::Thread tu(dom_, [&] {
      dom_.sleep_for(vt::from_micros(10));
      ASSERT_TRUE(sched->acquire(*urgent).has_value());
      {
        std::scoped_lock lock(order_mu);
        order.push_back(3);
      }
      sched->release(*urgent);
    });
    vt::Thread releaser(dom_, [&] {
      dom_.sleep_for(vt::from_millis(5));
      sched->release(*holder);
    });
    dom_.unhold();
  }
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 3u);  // earliest deadline first
  EXPECT_EQ(order[2], 4u);  // no deadline yields to any deadline
}

TEST_F(SchedulerTest, ResidencyAffinityWinsOverLoadBalance) {
  const GpuId g1 = add_gpu();
  add_gpu();
  auto sched = make(2);
  auto ctx = make_ctx(1);

  // Give the context resident data on g1.
  ClientId client = rt_->create_client();
  (void)rt_->set_device(client, 0);
  auto p = mm_->on_malloc(ctx->id, 256);
  ASSERT_TRUE(p.has_value());
  ASSERT_EQ(
      mm_->prepare_launch(ctx->id, g1, client, {sim::KernelArg::dev(p.value())}).outcome,
      MemoryManager::PrepareOutcome::Ready);

  auto b = sched->acquire(*ctx);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b.value().gpu, g1);  // follows its data even though g2 is emptier
  rt_->destroy_client(client);
}

TEST_F(SchedulerTest, MigrationOnlyToStrictlyFasterDevice) {
  const GpuId fast = add_gpu(200.0);
  const GpuId slow = add_gpu(50.0);
  auto sched = make(1, "fcfs", /*migration=*/true);

  // Context with residency on the slow device.
  auto ctx = make_ctx(1);
  ClientId client = rt_->create_client();
  (void)rt_->set_device(client, 1);
  auto p = mm_->on_malloc(ctx->id, 256);
  ASSERT_TRUE(p.has_value());
  ASSERT_EQ(
      mm_->prepare_launch(ctx->id, slow, client, {sim::KernelArg::dev(p.value())}).outcome,
      MemoryManager::PrepareOutcome::Ready);

  // The fast device is idle: the bind migrates.
  auto b = sched->acquire(*ctx);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b.value().gpu, fast);
  EXPECT_TRUE(b.value().migrated);
  EXPECT_EQ(sched->stats().migrations, 1u);
  EXPECT_FALSE(sched->faster_gpu_idle(fast));  // nothing faster than fast
  rt_->destroy_client(client);
}

TEST_F(SchedulerTest, NoMigrationWhenDisabled) {
  add_gpu(200.0);
  const GpuId slow = add_gpu(50.0);
  auto sched = make(1, "fcfs", /*migration=*/false);
  auto ctx = make_ctx(1);
  ClientId client = rt_->create_client();
  (void)rt_->set_device(client, 1);
  auto p = mm_->on_malloc(ctx->id, 256);
  ASSERT_TRUE(p.has_value());
  ASSERT_EQ(
      mm_->prepare_launch(ctx->id, slow, client, {sim::KernelArg::dev(p.value())}).outcome,
      MemoryManager::PrepareOutcome::Ready);

  auto b = sched->acquire(*ctx);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b.value().gpu, slow);  // stays home
  EXPECT_FALSE(sched->faster_gpu_idle(slow));
  rt_->destroy_client(client);
}

TEST_F(SchedulerTest, AllDevicesGoneFailsWaiters) {
  const GpuId only = add_gpu();
  auto sched = make(1);
  auto holder = make_ctx(1);
  ASSERT_TRUE(sched->acquire(*holder).has_value());
  auto waiter = make_ctx(2);
  Status result = Status::Ok;
  {
    dom_.hold();
    vt::Thread tw(dom_, [&] { result = sched->acquire(*waiter).status(); });
    vt::Thread tk(dom_, [&] {
      dom_.sleep_for(vt::from_millis(1));
      sched->remove_device(only);
    });
    dom_.unhold();
  }
  EXPECT_EQ(result, Status::ErrorDeviceUnavailable);
}

TEST_F(SchedulerTest, PolicyRegistryReportsTypedErrors) {
  EXPECT_EQ(make_scheduling_policy("no-such-policy").status(), Status::ErrorInvalidValue);
  for (const char* name : {"fcfs", "sjf", "credit", "deadline", "tq", "fair"}) {
    auto policy = make_scheduling_policy(name);
    ASSERT_TRUE(policy.has_value()) << name;
    EXPECT_STREQ(policy.value()->name(), name);
  }
  EXPECT_FALSE(make_scheduling_policy("fcfs").value()->preemptive());
  EXPECT_TRUE(make_scheduling_policy("tq").value()->preemptive());
  EXPECT_TRUE(make_scheduling_policy("fair").value()->preemptive());

  add_gpu();
  auto bad = make(1, "no-such-policy");
  EXPECT_EQ(bad->policy_status(), Status::ErrorInvalidValue);
  EXPECT_STREQ(bad->policy().name(), "fcfs");  // daemon stays schedulable
  auto good = make(1, "tq");
  EXPECT_EQ(good->policy_status(), Status::Ok);
}

TEST_F(SchedulerTest, ExclusiveRotationHoldsBackSecondTenant) {
  add_gpu();
  auto sched = make(2, "tq");  // two vGPU slots on one physical device
  auto first = make_ctx(1, 0.0);
  auto second = make_ctx(2, 1.0);
  ASSERT_TRUE(sched->acquire(*first).has_value());

  bool second_bound = false;
  {
    dom_.hold();
    vt::Thread tw(dom_, [&] {
      ASSERT_TRUE(sched->acquire(*second).has_value());
      second_bound = true;
      sched->release(*second);
    });
    vt::Thread checker(dom_, [&] {
      dom_.sleep_for(vt::from_millis(1));
      // The device still has a free vGPU slot, but exclusive rotation
      // refuses to co-schedule a second tenant on the same physical GPU.
      EXPECT_EQ(sched->waiting_count(), 1);
      EXPECT_FALSE(second_bound);
      sched->release(*first);
    });
    dom_.unhold();
  }
  EXPECT_TRUE(second_bound);
}

TEST_F(SchedulerTest, TqServesNeverScheduledContextFirst) {
  add_gpu();
  auto sched = make(1, "tq");
  auto served = make_ctx(1, 0.0);
  ASSERT_TRUE(sched->acquire(*served).has_value());
  sched->release(*served);  // now carries a last-service stamp

  auto holder = make_ctx(2, 1.0);
  auto fresh = make_ctx(3, 2.0);  // latest arrival, but never served
  ASSERT_TRUE(sched->acquire(*holder).has_value());

  std::vector<u64> order;
  std::mutex order_mu;
  {
    dom_.hold();
    vt::Thread ts(dom_, [&] {
      ASSERT_TRUE(sched->acquire(*served).has_value());
      std::scoped_lock lock(order_mu);
      order.push_back(1);
    });
    vt::Thread tf(dom_, [&] {
      dom_.sleep_for(vt::from_micros(10));  // the served context waits first
      ASSERT_TRUE(sched->acquire(*fresh).has_value());
      {
        std::scoped_lock lock(order_mu);
        order.push_back(3);
      }
      sched->release(*fresh);
    });
    vt::Thread releaser(dom_, [&] {
      dom_.sleep_for(vt::from_millis(1));
      sched->release(*holder);
    });
    dom_.unhold();
  }
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 3u);  // round-robin: least recently served first
}

TEST_F(SchedulerTest, QuantumPumpPreemptsExpiredHolder) {
  add_gpu();
  auto sched = make(1, "tq");
  auto holder = make_ctx(1, 0.0);
  auto waiter = make_ctx(2, 1.0);
  // A stand-in for the Runtime's executor: no memory to swap in this
  // fixture, so preemption is just the binding revocation.
  std::map<u64, Context*> by_id{{1, holder.get()}, {2, waiter.get()}};
  sched->set_preempt_executor([&](ContextId id) {
    return sched->preempt(*by_id.at(id.value)) == Status::Ok;
  });

  ASSERT_TRUE(sched->acquire(*holder).has_value());
  bool waiter_bound = false;
  {
    dom_.hold();
    vt::Thread tw(dom_, [&] {
      ASSERT_TRUE(sched->acquire(*waiter).has_value());
      waiter_bound = true;
      sched->release(*waiter);
    });
    dom_.unhold();
  }
  // The pump preempted the idle holder one quantum after its bind; the
  // waiter never needed an explicit release from the holder.
  EXPECT_TRUE(waiter_bound);
  EXPECT_FALSE(sched->context_bound(holder->id));
  EXPECT_GE(sched->stats().preemptions, 1u);
}

TEST_F(SchedulerTest, ForcePreemptSweepRevokesAllBindings) {
  add_gpu();
  add_gpu();
  auto sched = make(1, "tq");
  auto a = make_ctx(1, 0.0);
  auto b = make_ctx(2, 1.0);
  std::map<u64, Context*> by_id{{1, a.get()}, {2, b.get()}};
  sched->set_preempt_executor([&](ContextId id) {
    return sched->preempt(*by_id.at(id.value)) == Status::Ok;
  });
  ASSERT_TRUE(sched->acquire(*a).has_value());
  ASSERT_TRUE(sched->acquire(*b).has_value());
  auto swept = sched->force_preempt_sweep();
  ASSERT_TRUE(swept.has_value());
  EXPECT_EQ(swept.value(), 2);
  EXPECT_EQ(sched->bound_count(), 0);

  auto fcfs = make(1, "fcfs");
  EXPECT_EQ(fcfs->force_preempt_sweep().value(), 0);  // non-preemptive no-op
}

TEST_F(SchedulerTest, HotAddUnblocksWaiters) {
  add_gpu();
  auto sched = make(1);
  auto holder = make_ctx(1);
  ASSERT_TRUE(sched->acquire(*holder).has_value());
  auto waiter = make_ctx(2);
  bool got = false;
  {
    dom_.hold();
    vt::Thread tw(dom_, [&] { got = sched->acquire(*waiter).has_value(); });
    vt::Thread ta(dom_, [&] {
      dom_.sleep_for(vt::from_millis(1));
      const GpuId fresh = machine_.add_gpu(sim::test_gpu(1 << 20));
      sched->add_device(static_cast<int>(machine_.all_gpus().size()) - 1, fresh);
    });
    dom_.unhold();
  }
  EXPECT_TRUE(got);
}

}  // namespace
}  // namespace gpuvm::core
