// Chaos subsystem tests: plan parsing, engine semantics, invariants, the
// seed soak (every seed replayed twice, bit-identical), the 8-tenant
// determinism regression, and the chaos metric surfacing.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>

#include "chaos/chaos_engine.hpp"
#include "chaos/fault_plan.hpp"
#include "chaos/harness.hpp"
#include "chaos/invariants.hpp"
#include "obs/metrics.hpp"

namespace gpuvm::chaos {
namespace {

// ---------------------------------------------------------------------------
// FaultPlan: text round-trip, parsing errors, generator shape.

TEST(FaultPlan, TextRoundTrip) {
  FaultPlan plan;
  plan.seed = 99;
  plan.add({vt::from_millis(5), FaultKind::DeviceFail, 0, 1});
  plan.add({vt::from_millis(2), FaultKind::TransportDegrade, 0, 0, 0, 0.25, vt::from_micros(200)});
  plan.add({vt::from_millis(8), FaultKind::NodeRejoin, 1, 0, 2});
  plan.add({vt::from_millis(3), FaultKind::DeviceFailAfterOps, 1, 0, 50});

  // add() keeps events time-sorted.
  for (size_t i = 1; i < plan.events.size(); ++i) {
    EXPECT_LE(plan.events[i - 1].at, plan.events[i].at);
  }

  std::string error;
  auto reparsed = FaultPlan::parse(plan.to_text(), &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_EQ(reparsed->seed, 99u);
  ASSERT_EQ(reparsed->events.size(), plan.events.size());
  for (size_t i = 0; i < plan.events.size(); ++i) {
    EXPECT_EQ(reparsed->events[i].describe(), plan.events[i].describe()) << "event " << i;
  }
}

TEST(FaultPlan, ParseRejectsJunk) {
  std::string error;
  EXPECT_FALSE(FaultPlan::parse("at 5 device-fail\n", &error).has_value());  // no unit
  EXPECT_FALSE(FaultPlan::parse("at 5ms warp-core-breach\n", &error).has_value());
  EXPECT_TRUE(error.find("warp-core-breach") != std::string::npos) << error;
  EXPECT_FALSE(FaultPlan::parse("at 5ms device-fail node\n", &error).has_value());
  EXPECT_FALSE(FaultPlan::parse("banana\n", &error).has_value());
  // Comments and blank lines are fine.
  auto ok = FaultPlan::parse("# header\n\nseed 3\nat 1ms node-crash node=0  # boom\n", &error);
  ASSERT_TRUE(ok.has_value()) << error;
  EXPECT_EQ(ok->seed, 3u);
  ASSERT_EQ(ok->events.size(), 1u);
  EXPECT_EQ(ok->events[0].kind, FaultKind::NodeCrash);
}

TEST(FaultPlan, RandomIsSeedStableAndEndsHealed) {
  const auto horizon = vt::from_millis(20);
  FaultPlan a = FaultPlan::random(1234, 2, 2, 12, horizon);
  FaultPlan b = FaultPlan::random(1234, 2, 2, 12, horizon);
  EXPECT_EQ(a.to_text(), b.to_text());
  FaultPlan c = FaultPlan::random(1235, 2, 2, 12, horizon);
  EXPECT_NE(a.to_text(), c.to_text());

  // The generator appends a recovery tail: any transport degrade heals, and
  // no node is left with zero healthy GPUs (crashes are followed by rejoins).
  for (u64 seed = 1; seed <= 30; ++seed) {
    FaultPlan plan = FaultPlan::random(seed, 2, 2, 10, horizon);
    bool degraded = false;
    for (const FaultEvent& ev : plan.events) {
      ASSERT_LE(ev.at, horizon);
      if (ev.kind == FaultKind::TransportDegrade) degraded = true;
      if (ev.kind == FaultKind::TransportHeal) degraded = false;
    }
    EXPECT_FALSE(degraded) << "seed " << seed << " leaves transport degraded:\n"
                           << plan.to_text();
  }
}

// ---------------------------------------------------------------------------
// ChaosEngine semantics against a live deployment (via the harness).

FaultPlan single_event_plan(FaultEvent ev, u64 seed = 5) {
  FaultPlan plan;
  plan.seed = seed;
  plan.add(ev);
  return plan;
}

ScenarioConfig small_scenario(FaultPlan plan) {
  ScenarioConfig config;
  config.nodes = 2;
  config.gpus_per_node = 2;
  config.vgpus_per_device = 2;
  config.tenants = 4;
  config.kernels_per_tenant = 8;
  config.plan = std::move(plan);
  return config;
}

TEST(ChaosEngine, DeviceFailureRecoversTenantsAndCountsMetrics) {
  FaultEvent ev;
  ev.at = vt::from_micros(700);  // mid first kernel burst
  ev.kind = FaultKind::DeviceFail;
  ev.node = 0;
  ev.gpu_index = 0;
  const ScenarioResult result = run_scenario(small_scenario(single_event_plan(ev)));

  EXPECT_TRUE(result.violations.empty()) << result.violations.front();
  for (const TenantOutcome& t : result.outcomes) {
    EXPECT_EQ(t.final_status, Status::Ok) << "tenant " << t.tenant;
    EXPECT_TRUE(t.data_ok) << "tenant " << t.tenant;
  }
  // Metric surfacing (satellite): the event count comes from chaos.events,
  // and the device loss must show up as scheduler requeues + runtime
  // recoveries (a context was bound to the failed device at that instant).
  EXPECT_EQ(result.chaos_events, 1u);
  EXPECT_EQ(result.event_log.size(), 1u);
  EXPECT_GE(result.requeues, 1u);
  EXPECT_GE(result.recoveries, 1u);
}

TEST(ChaosEngine, NodeCrashWithRejoinUnderGraceCompletesAllTenants) {
  FaultPlan plan;
  plan.seed = 11;
  FaultEvent crash;
  crash.at = vt::from_micros(900);
  crash.kind = FaultKind::NodeCrash;
  crash.node = 0;
  plan.add(crash);
  FaultEvent rejoin;
  rejoin.at = vt::from_millis(3);
  rejoin.kind = FaultKind::NodeRejoin;
  rejoin.node = 0;
  rejoin.count = 2;
  plan.add(rejoin);

  ScenarioConfig config = small_scenario(plan);
  config.grace_seconds = 0.25;  // survive the dark window
  const ScenarioResult result = run_scenario(config);

  EXPECT_TRUE(result.violations.empty()) << result.violations.front();
  for (const TenantOutcome& t : result.outcomes) {
    EXPECT_EQ(t.final_status, Status::Ok) << "tenant " << t.tenant;
    EXPECT_TRUE(t.data_ok) << "tenant " << t.tenant;
  }
  EXPECT_EQ(result.chaos_events, 2u);
}

TEST(ChaosEngine, TransportDegradeRetriesAndHeals) {
  FaultPlan plan;
  plan.seed = 21;
  FaultEvent degrade;
  degrade.at = vt::from_micros(300);
  degrade.kind = FaultKind::TransportDegrade;
  degrade.drop_rate = 0.2;
  degrade.delay = vt::from_micros(100);
  plan.add(degrade);
  FaultEvent heal;
  heal.at = vt::from_millis(2);
  heal.kind = FaultKind::TransportHeal;
  plan.add(heal);

  const ScenarioResult result = run_scenario(small_scenario(plan));
  EXPECT_TRUE(result.violations.empty()) << result.violations.front();
  // A 20% drop rate over hundreds of messages must trip the retransmit
  // path; the transport.retries counter is how the chaos tests observe it.
  EXPECT_GE(result.transport_retries, 1u);
  EXPECT_GE(result.transport_dropped, result.transport_retries);
}

TEST(ChaosEngine, AllocPulseSurfacesStatusWithoutBreakingInvariants) {
  FaultEvent ev;
  ev.at = vt::from_micros(400);
  ev.kind = FaultKind::AllocPulse;
  ev.node = 0;
  ev.gpu_index = 0;
  ev.count = 3;
  const ScenarioResult result = run_scenario(small_scenario(single_event_plan(ev)));
  EXPECT_TRUE(result.violations.empty()) << result.violations.front();
  // Every tenant either finished Ok with verified data or surfaced an error
  // status -- no kernel may vanish without a verdict.
  for (const TenantOutcome& t : result.outcomes) {
    if (t.final_status == Status::Ok) {
      EXPECT_TRUE(t.data_ok) << "tenant " << t.tenant;
    } else {
      EXPECT_GE(t.kernels_failed + (t.kernels_ok == 0 ? 1u : 0u), 1u);
    }
  }
}

// ---------------------------------------------------------------------------
// Satellite 1: 8-tenant determinism regression under a fixed chaos seed.

TEST(ChaosDeterminism, EightTenantBatchReplaysIdentically) {
  ScenarioConfig config;
  config.nodes = 2;
  config.gpus_per_node = 2;
  config.vgpus_per_device = 2;
  config.tenants = 8;
  config.kernels_per_tenant = 8;
  config.plan = FaultPlan::random(20260806, 2, 2, 10, vt::from_millis(6));

  const ScenarioResult first = run_scenario(config);
  const ScenarioResult second = run_scenario(config);

  EXPECT_TRUE(first.violations.empty()) << first.violations.front();
  ASSERT_EQ(first.outcomes.size(), 8u);
  // Identical makespan, per-context Status, and recovery counts.
  EXPECT_TRUE(first.deterministic_equal(second)) << first.diff(second);
  EXPECT_EQ(first.makespan_seconds, second.makespan_seconds);
  for (size_t i = 0; i < first.outcomes.size(); ++i) {
    EXPECT_EQ(first.outcomes[i].final_status, second.outcomes[i].final_status) << i;
  }
  EXPECT_EQ(first.recoveries, second.recoveries);
  EXPECT_EQ(first.requeues, second.requeues);
}

// The calendar-queue clock engine is a pure performance substitution: the
// same chaotic scenario must produce bit-identical outcomes under the fast
// path and the legacy multimap baseline. (CI soaks this over 20 seeds via
// gpuvm_chaos --vt-engine; this is the in-tree regression.)
TEST(ChaosDeterminism, CalendarAndLegacyClockEnginesAgree) {
  ScenarioConfig config;
  config.nodes = 2;
  config.gpus_per_node = 2;
  config.vgpus_per_device = 2;
  config.tenants = 8;
  config.kernels_per_tenant = 8;
  config.plan = FaultPlan::random(20260806, 2, 2, 10, vt::from_millis(6));

  config.vt_engine = "calendar";
  const ScenarioResult calendar = run_scenario(config);
  config.vt_engine = "legacy";
  const ScenarioResult legacy = run_scenario(config);

  EXPECT_TRUE(calendar.violations.empty()) << calendar.violations.front();
  EXPECT_TRUE(calendar.deterministic_equal(legacy)) << calendar.diff(legacy);
  EXPECT_EQ(calendar.makespan_seconds, legacy.makespan_seconds);
  EXPECT_EQ(calendar.recoveries, legacy.recoveries);
  EXPECT_EQ(calendar.requeues, legacy.requeues);
}

// ---------------------------------------------------------------------------
// Causal tracing under chaos: an offloading scenario exports one merged
// Perfetto trace, and two same-seed runs export bit-identical bytes (span
// ids are pure hashes of seed/job/ordinal -- no clocks, no addresses).

TEST(ChaosTrace, OffloadedRunExportsBitIdenticalMergedTrace) {
  ScenarioConfig config;
  config.nodes = 2;
  config.gpus_per_node = 1;
  config.vgpus_per_device = 1;  // offload_threshold = 1: second tenant per node sheds
  config.tenants = 6;
  config.kernels_per_tenant = 4;
  config.enable_offloading = true;
  // Legacy fixed-peer offload (no directory hysteresis): with one vGPU per
  // node and three tenants landing on each, the third Hello a node admits
  // arrives at load >= threshold and is always shed to the peer, so the
  // trace reliably contains a proxied session.
  config.enable_load_reports = false;
  config.plan = FaultPlan::random(20260808, 2, 1, 6, vt::from_millis(5));

  const auto read_file = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  };

  config.trace_out = ::testing::TempDir() + "/chaos_trace_a.json";
  const ScenarioResult first = run_scenario(config);
  const std::string trace_a = read_file(config.trace_out);

  config.trace_out = ::testing::TempDir() + "/chaos_trace_b.json";
  const ScenarioResult second = run_scenario(config);
  const std::string trace_b = read_file(config.trace_out);

  EXPECT_TRUE(first.violations.empty()) << first.violations.front();
  EXPECT_TRUE(first.deterministic_equal(second)) << first.diff(second);

  ASSERT_FALSE(trace_a.empty());
  EXPECT_EQ(trace_a, trace_b) << "same seed must export bit-identical trace JSON";
  // The merged timeline really is causal and cross-process: tenant roots,
  // daemon-side queueing, and the offload hop all carry trace ids.
  EXPECT_NE(trace_a.find("\"tenant\""), std::string::npos);
  EXPECT_NE(trace_a.find("queue-wait"), std::string::npos);
  EXPECT_NE(trace_a.find("offload-session"), std::string::npos)
      << "the overloaded node must have proxied at least one tenant";
  EXPECT_NE(trace_a.find("\"trace\":\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Flight recorder: violations produce postmortem dumps; clean runs don't.

TEST(FlightRecorder, ViolationDumpsPostmortemCleanRunDoesNot) {
  ScenarioConfig config;
  config.nodes = 2;
  config.gpus_per_node = 2;
  config.vgpus_per_device = 2;
  config.tenants = 4;
  config.plan = FaultPlan::random(42, 2, 2, 8, vt::from_millis(5));
  const ScenarioResult clean = run_scenario(config);
  ASSERT_TRUE(clean.violations.empty());
  EXPECT_TRUE(clean.flight_dumps.empty()) << "no violation, no postmortem";

  // Force a violation: crash a node with a grace window too short for the
  // plan's rejoin, so tenants on it fail and the steady check fires... a
  // surgical plan is simpler: fail every GPU and never heal.
  ScenarioConfig broken = config;
  broken.grace_seconds = 0.0005;
  broken.plan = FaultPlan{};
  broken.plan.seed = 43;
  broken.plan.add({vt::from_millis(1), FaultKind::NodeCrash, 0});
  broken.plan.add({vt::from_millis(1.2), FaultKind::NodeCrash, 1});
  const ScenarioResult bad = run_scenario(broken);
  if (!bad.violations.empty()) {
    ASSERT_FALSE(bad.flight_dumps.empty())
        << "a violating run must capture a flight-recorder postmortem";
    EXPECT_NE(bad.flight_dumps.front().find("flight"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// The seed soak: >= 20 seeds of mixed device/node/transport faults; every
// seed must hold the invariants and replay deterministically.

class ChaosSoak : public ::testing::TestWithParam<u64> {};

TEST_P(ChaosSoak, SeedIsCleanAndDeterministic) {
  const u64 seed = GetParam();
  ScenarioConfig config;
  config.nodes = 2;
  config.gpus_per_node = 2;
  config.vgpus_per_device = 2;
  config.tenants = 6;
  config.kernels_per_tenant = 8;
  config.plan = FaultPlan::random(seed, 2, 2, 10, vt::from_millis(5));

  const ScenarioResult first = run_scenario(config);
  for (const std::string& v : first.violations) ADD_FAILURE() << "seed " << seed << ": " << v;
  for (const TenantOutcome& t : first.outcomes) {
    if (t.final_status == Status::Ok) {
      EXPECT_TRUE(t.data_ok) << "seed " << seed << " tenant " << t.tenant
                             << ": Ok status but corrupted data";
    }
  }
  const ScenarioResult second = run_scenario(config);
  EXPECT_TRUE(first.deterministic_equal(second))
      << "seed " << seed << " diverged on replay:\n"
      << first.diff(second);
}

INSTANTIATE_TEST_SUITE_P(TwentySeeds, ChaosSoak,
                         ::testing::Range<u64>(1, 21));

// ---------------------------------------------------------------------------
// Invariant checker: prove it actually detects breakage (a checker that can
// never fire would pass every soak vacuously).

TEST(Invariants, DetectsUnhealthyDeviceListedHealthy) {
  // check_steady on a healthy scenario is empty; the soak covers that. Here
  // feed it a synthetic broken view via a real cluster whose scheduler we
  // bypass: fail a GPU *without* telling the runtime (subscribe path is the
  // machine's, so use the SimGpu handle directly).
  vt::Domain dom;
  sim::SimMachine machine(dom, {});
  cudart::CudaRt rt(machine);
  core::Runtime runtime(rt, {});
  const GpuId id = machine.add_gpu(sim::test_gpu());

  std::vector<NodeTarget> targets{{"n0", &machine, &runtime}};
  EXPECT_TRUE(check_steady(targets).empty());

  // Force the device unhealthy behind the machine's back: gpus() still
  // lists it, so the steady check must flag the inconsistency.
  machine.gpu(id)->inject_failure();
  const auto violations = check_steady(targets);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().find("unhealthy"), std::string::npos) << violations.front();
}

}  // namespace
}  // namespace gpuvm::chaos
