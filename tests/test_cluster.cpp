// Tests for the cluster substrate: nodes, the TORQUE-like batch scheduler
// (GPU-aware serialization vs. GPU-oblivious stacking on gpuvm), and
// inter-node offloading.
#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "cluster/torque.hpp"

namespace gpuvm::cluster {
namespace {

sim::GpuSpec small_gpu() { return sim::test_gpu(1 << 20); }

void add_kernels(Cluster& cluster) {
  sim::KernelDef burn;
  burn.name = "burn";  // 1ms on the 100-GFLOPS test GPU
  burn.body = [](sim::KernelExecContext&) { return Status::Ok; };
  burn.cost = [](const sim::LaunchConfig&, const std::vector<sim::KernelArg>&) {
    return sim::KernelCost{1e8, 0.0};
  };
  cluster.register_kernel(burn);
}

/// A job with `kernels` GPU bursts separated by `cpu_ms` CPU phases.
Job make_job(vt::Domain& dom, int kernels, double cpu_ms, std::atomic<int>* done) {
  Job job;
  job.body = [&dom, kernels, cpu_ms, done](core::GpuApi& api) {
    ASSERT_EQ(api.register_kernels({"burn"}), Status::Ok);
    auto ptr = api.malloc(1024);
    ASSERT_TRUE(ptr.has_value());
    std::vector<float> data(256, 1.0f);
    ASSERT_EQ(api.copy_in(ptr.value(), data), Status::Ok);
    for (int i = 0; i < kernels; ++i) {
      ASSERT_EQ(api.launch("burn", {{1, 1, 1}, {64, 1, 1}}, {sim::KernelArg::dev(ptr.value())}),
                Status::Ok);
      if (cpu_ms > 0) dom.sleep_for(vt::from_millis(cpu_ms));
    }
    std::vector<float> out(256);
    ASSERT_EQ(api.copy_out(out, ptr.value()), Status::Ok);
    EXPECT_EQ(out, data);
    if (done != nullptr) done->fetch_add(1);
  };
  return job;
}

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() : guard_(dom_) {}

  Cluster make_cluster(int vgpus, int offload_threshold = -1) {
    core::RuntimeConfig config;
    config.scheduler.vgpus_per_device = vgpus;
    config.offload_threshold = offload_threshold;
    // Unbalanced two-node cluster like the paper's: 3 GPUs vs 1 GPU.
    Cluster cluster(dom_, sim::SimParams{1},
                    {{"node-a", {small_gpu(), small_gpu(), small_gpu()}},
                     {"node-b", {small_gpu()}}},
                    config, cudart::CudaRtConfig{4 * 1024, 8});
    add_kernels(cluster);
    return cluster;
  }

  vt::Domain dom_;
  vt::AttachGuard guard_;
};

TEST_F(ClusterTest, ObliviousModeDividesJobsEqually) {
  Cluster cluster = make_cluster(4);
  TorqueScheduler torque(dom_, cluster.node_pointers(), TorqueScheduler::Mode::Oblivious);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) torque.submit(make_job(dom_, 2, 0.5, &done));
  const BatchResult result = torque.run_to_completion();
  EXPECT_EQ(done.load(), 8);
  EXPECT_EQ(result.jobs.size(), 8u);
  // 4 jobs per node regardless of GPU counts (the scheduler is oblivious).
  EXPECT_EQ(cluster.node(0).runtime().stats().connections, 4u);
  EXPECT_EQ(cluster.node(1).runtime().stats().connections, 4u);
  EXPECT_GT(result.total_seconds, 0.0);
  EXPECT_GE(result.total_seconds, result.avg_seconds);
}

TEST_F(ClusterTest, GpuAwareModeSerializesOnGpus) {
  Cluster cluster = make_cluster(1);
  TorqueScheduler torque(dom_, cluster.node_pointers(), TorqueScheduler::Mode::GpuAware);
  std::atomic<int> done{0};
  // 8 jobs, 4 GPUs total: at most 4 run at once; each runs ~5ms of GPU.
  for (int i = 0; i < 8; ++i) torque.submit(make_job(dom_, 5, 0.0, &done));
  const BatchResult result = torque.run_to_completion();
  EXPECT_EQ(done.load(), 8);
  // Two waves of 5ms GPU work => makespan ~2x one job's time.
  EXPECT_GT(result.total_seconds, 0.0095);
  EXPECT_LT(result.total_seconds, 0.013);
}

TEST_F(ClusterTest, SharingBeatsSerializedForCpuHeavyJobs) {
  // The core claim of Figures 10/11 at node scale: GPU sharing (4 vGPUs)
  // outperforms serialized execution (1 vGPU) when jobs have CPU phases.
  const auto run = [&](int vgpus) {
    Cluster cluster = make_cluster(vgpus);
    TorqueScheduler torque(dom_, cluster.node_pointers(), TorqueScheduler::Mode::Oblivious);
    for (int i = 0; i < 16; ++i) torque.submit(make_job(dom_, 4, 2.0, nullptr));
    return torque.run_to_completion().total_seconds;
  };
  const double serialized = run(1);
  const double shared = run(4);
  EXPECT_LT(shared, serialized);
}

TEST_F(ClusterTest, OffloadingRelievesTheOverloadedNode) {
  Cluster cluster = make_cluster(1, /*offload_threshold=*/1);
  cluster.enable_offloading();
  TorqueScheduler torque(dom_, cluster.node_pointers(), TorqueScheduler::Mode::Oblivious);
  std::atomic<int> done{0};
  // 12 jobs split 6/6, but node-b has a single GPU (1 vGPU): it overloads
  // and sheds connections to node-a.
  for (int i = 0; i < 12; ++i) torque.submit(make_job(dom_, 4, 1.0, &done));
  const BatchResult result = torque.run_to_completion();
  EXPECT_EQ(done.load(), 12);
  EXPECT_GT(cluster.total_offloaded(), 0u);
  EXPECT_GT(result.total_seconds, 0.0);
}

TEST_F(ClusterTest, OffloadingImprovesUnbalancedMakespan) {
  const auto run = [&](bool offload) {
    Cluster cluster = make_cluster(4, offload ? 2 : -1);
    if (offload) cluster.enable_offloading();
    TorqueScheduler torque(dom_, cluster.node_pointers(), TorqueScheduler::Mode::Oblivious);
    for (int i = 0; i < 24; ++i) torque.submit(make_job(dom_, 6, 1.0, nullptr));
    return torque.run_to_completion().total_seconds;
  };
  const double without = run(false);
  const double with = run(true);
  EXPECT_LT(with, without);
}

TEST_F(ClusterTest, JobResultsCarryPerJobTimes) {
  Cluster cluster = make_cluster(4);
  TorqueScheduler torque(dom_, cluster.node_pointers(), TorqueScheduler::Mode::Oblivious);
  torque.submit(make_job(dom_, 1, 0.0, nullptr));
  torque.submit(make_job(dom_, 3, 0.0, nullptr));
  const BatchResult result = torque.run_to_completion();
  ASSERT_EQ(result.jobs.size(), 2u);
  for (const JobResult& job : result.jobs) {
    EXPECT_GT(job.seconds, 0.0);
    EXPECT_TRUE(job.node.valid());
  }
}

}  // namespace
}  // namespace gpuvm::cluster
