// Concurrency tests for the sharded dispatch hot path: an N-tenant
// mixed-operation hammer in both dispatch modes (run under
// GPUVM_SANITIZE=thread to validate the lock hierarchy), the
// dispatch-lock contention accounting, and a regression proving the
// asynchronous swap write-back never serves stale swap bytes.
#include <gtest/gtest.h>

#include <vector>

#include "core/frontend.hpp"
#include "core/runtime.hpp"
#include "sim/machine.hpp"

namespace gpuvm::core {
namespace {

constexpr u64 kDevBytes = 1 << 20;  // 1 MiB test devices

class DispatchConcurrencyTest : public ::testing::Test {
 protected:
  explicit DispatchConcurrencyTest(int gpus = 2)
      : guard_(dom_), machine_(dom_, sim::SimParams{1}) {
    for (int i = 0; i < gpus; ++i) machine_.add_gpu(sim::test_gpu(kDevBytes));
    sim::KernelDef addone;
    addone.name = "addone";
    addone.body = [](sim::KernelExecContext& ctx) {
      const i64 n = ctx.scalar_i64(1);
      auto data = ctx.buffer<float>(0);
      for (i64 i = 0; i < n; ++i) data[static_cast<size_t>(i)] += 1.0f;
      return Status::Ok;
    };
    addone.cost = sim::per_thread_cost(10.0, 8.0);
    machine_.kernels().add(addone);
    rt_ = std::make_unique<cudart::CudaRt>(machine_, cudart::CudaRtConfig{4 * 1024, 32});
  }

  void start(RuntimeConfig config = {}) {
    runtime_ = std::make_unique<Runtime>(*rt_, config);
  }

  /// One tenant of the hammer: a loop of malloc -> copy_in -> launch ->
  /// copy_out -> verify -> free with a tenant-specific fill pattern, plus
  /// one long-lived buffer re-verified at the end (catches cross-tenant
  /// corruption that a transient buffer would miss).
  void hammer_tenant(int tenant, int iters, u64 floats) {
    FrontendApi api(runtime_->connect());
    ASSERT_TRUE(api.connected());
    ASSERT_EQ(api.register_kernels({"addone"}), Status::Ok);

    const float base = 10.0f * static_cast<float>(tenant + 1);
    const u32 blocks = static_cast<u32>((floats + 255) / 256);
    auto keeper = api.malloc(floats * sizeof(float));
    ASSERT_TRUE(keeper.has_value());
    std::vector<float> kept(floats, base);
    ASSERT_EQ(api.copy_in(keeper.value(), kept), Status::Ok);
    // Materialize the keeper on the device so later launches must evict it
    // (and its bytes must survive the write-back round trip).
    ASSERT_EQ(api.launch("addone", {{blocks, 1, 1}, {256, 1, 1}},
                         {sim::KernelArg::dev(keeper.value()),
                          sim::KernelArg::i64v(static_cast<i64>(floats))}),
              Status::Ok);
    for (int i = 0; i < iters; ++i) {
      auto buf = api.malloc(floats * sizeof(float));
      ASSERT_TRUE(buf.has_value());
      std::vector<float> host(floats, base + static_cast<float>(i));
      ASSERT_EQ(api.copy_in(buf.value(), host), Status::Ok);
      ASSERT_EQ(api.launch("addone", {{blocks, 1, 1}, {256, 1, 1}},
                           {sim::KernelArg::dev(buf.value()),
                            sim::KernelArg::i64v(static_cast<i64>(floats))}),
                Status::Ok);
      std::vector<float> out(floats);
      ASSERT_EQ(api.copy_out(out, buf.value()), Status::Ok);
      for (float v : out) ASSERT_EQ(v, base + static_cast<float>(i) + 1.0f);
      ASSERT_EQ(api.free(buf.value()), Status::Ok);
      dom_.sleep_for(vt::from_millis(1.0 + tenant));  // staggered CPU phase
    }

    std::vector<float> out(floats);
    ASSERT_EQ(api.copy_out(out, keeper.value()), Status::Ok);
    for (float v : out) ASSERT_EQ(v, base + 1.0f);
    ASSERT_EQ(api.free(keeper.value()), Status::Ok);
  }

  void run_hammer(int tenants, int iters, u64 floats) {
    dom_.hold();
    std::vector<vt::Thread> apps;
    for (int t = 0; t < tenants; ++t) {
      apps.emplace_back(dom_, [this, t, iters, floats] { hammer_tenant(t, iters, floats); });
    }
    dom_.unhold();
    apps.clear();
    runtime_->drain();
  }

  vt::Domain dom_;
  vt::AttachGuard guard_;
  sim::SimMachine machine_;
  std::unique_ptr<cudart::CudaRt> rt_;
  std::unique_ptr<Runtime> runtime_;
};

TEST_F(DispatchConcurrencyTest, EightTenantHammerSharded) {
  RuntimeConfig config;
  config.dispatch_mode = DispatchMode::Sharded;
  config.scheduler.vgpus_per_device = 2;  // 4 vGPUs < 8 tenants: queueing too
  start(config);
  run_hammer(8, 6, 16 * 1024);
  const auto s = runtime_->stats();
  EXPECT_EQ(s.connections, 8u);
  EXPECT_EQ(s.launches, 56u);
}

TEST_F(DispatchConcurrencyTest, EightTenantHammerGlobalLockBaseline) {
  // The legacy baseline needs a vGPU per concurrently-launching tenant (a
  // tenant queueing for a vGPU holds the daemon-wide lock).
  RuntimeConfig config;
  config.dispatch_mode = DispatchMode::GlobalLock;
  config.async_writeback = false;  // the full pre-sharding discipline
  config.scheduler.vgpus_per_device = 4;  // x2 GPUs = 8 vGPUs
  start(config);
  run_hammer(8, 4, 8 * 1024);
  const auto s = runtime_->stats();
  EXPECT_EQ(s.connections, 8u);
  EXPECT_EQ(s.launches, 40u);
  // Concurrent tenants must have collided on the single dispatch lock.
  EXPECT_GT(s.dispatch_lock_contended, 0u);
}

TEST_F(DispatchConcurrencyTest, ShardedHammerUnderMemoryPressure) {
  // Footprints that cannot all be resident: the hammer additionally drives
  // eviction, async write-back and re-materialization concurrently.
  RuntimeConfig config;
  config.scheduler.vgpus_per_device = 2;
  start(config);
  run_hammer(4, 4, 100 * 1024);  // 400 KiB live per tenant x 2 buffers
  const auto ms = runtime_->memory().stats();
  EXPECT_GT(ms.swapped_entries, 0u);  // pressure actually materialized
}

class AsyncWritebackTest : public DispatchConcurrencyTest {
 protected:
  AsyncWritebackTest() : DispatchConcurrencyTest(1) {}
};

TEST_F(AsyncWritebackTest, EvictionNeverServesStaleSwapBytes) {
  // Two buffers that cannot both be resident on the 1 MiB device. After a
  // kernel dirties A on the device, materializing B evicts A through the
  // *asynchronous* write-back; a subsequent host read of A must see the
  // kernel's values (2.0), never the stale pre-launch swap copy (1.0).
  RuntimeConfig config;
  ASSERT_TRUE(config.async_writeback);
  start(config);

  FrontendApi api(runtime_->connect());
  ASSERT_EQ(api.register_kernels({"addone"}), Status::Ok);
  const u64 floats = 150 * 1024;  // 600 KiB each
  const u32 blocks = static_cast<u32>((floats + 255) / 256);
  const auto launch_on = [&](VirtualPtr p) {
    return api.launch("addone", {{blocks, 1, 1}, {256, 1, 1}},
                      {sim::KernelArg::dev(p), sim::KernelArg::i64v(static_cast<i64>(floats))});
  };

  auto a = api.malloc(floats * sizeof(float));
  ASSERT_TRUE(a.has_value());
  std::vector<float> ones(floats, 1.0f);
  ASSERT_EQ(api.copy_in(a.value(), ones), Status::Ok);
  ASSERT_EQ(launch_on(a.value()), Status::Ok);  // device copy of A now 2.0, dirty

  auto b = api.malloc(floats * sizeof(float));
  ASSERT_TRUE(b.has_value());
  ASSERT_EQ(api.copy_in(b.value(), ones), Status::Ok);
  ASSERT_EQ(launch_on(b.value()), Status::Ok);  // evicts A via async write-back

  std::vector<float> out(floats);
  ASSERT_EQ(api.copy_out(out, a.value()), Status::Ok);
  for (float v : out) ASSERT_EQ(v, 2.0f);  // the drained, not the stale, bytes
  EXPECT_GT(runtime_->memory().stats().async_writebacks, 0u);
}

TEST_F(AsyncWritebackTest, ReaderInsideDrainWindowFencesOnCompletion) {
  // Race the drain directly: trigger an asynchronous whole-context
  // write-back (the inter-application swap victim path) and read the swap
  // bytes back with no intervening device work -- the modeled D2H is still
  // in flight, so the read must fence on its completion (and count it).
  RuntimeConfig config;
  start(config);

  FrontendApi api(runtime_->connect());
  ASSERT_EQ(api.register_kernels({"addone"}), Status::Ok);
  const u64 floats = 150 * 1024;  // 600 KiB: ~120us drain on the 5 GB/s bus
  const u32 blocks = static_cast<u32>((floats + 255) / 256);
  auto a = api.malloc(floats * sizeof(float));
  ASSERT_TRUE(a.has_value());
  std::vector<float> ones(floats, 1.0f);
  ASSERT_EQ(api.copy_in(a.value(), ones), Status::Ok);
  ASSERT_EQ(api.launch("addone", {{blocks, 1, 1}, {256, 1, 1}},
                       {sim::KernelArg::dev(a.value()),
                        sim::KernelArg::i64v(static_cast<i64>(floats))}),
            Status::Ok);

  // The victim path: write back and free everything, without blocking.
  ASSERT_EQ(runtime_->memory().swap_context(ContextId{1}), Status::Ok);

  std::vector<float> out(floats);
  ASSERT_EQ(api.copy_out(out, a.value()), Status::Ok);
  for (float v : out) ASSERT_EQ(v, 2.0f);

  const auto ms = runtime_->memory().stats();
  EXPECT_GT(ms.async_writebacks, 0u);
  EXPECT_GT(ms.writeback_fences, 0u);  // the read landed inside the window
}

TEST_F(AsyncWritebackTest, SyncAndAsyncWritebackAgreeOnBytes) {
  // Differential check: the async pipeline must be invisible to data --
  // run the same eviction-heavy sequence in both modes and compare.
  const u64 floats = 150 * 1024;
  const u32 blocks = static_cast<u32>((floats + 255) / 256);
  std::vector<std::vector<float>> results;
  for (const bool async : {false, true}) {
    RuntimeConfig config;
    config.async_writeback = async;
    start(config);
    FrontendApi api(runtime_->connect());
    ASSERT_EQ(api.register_kernels({"addone"}), Status::Ok);
    auto a = api.malloc(floats * sizeof(float));
    auto b = api.malloc(floats * sizeof(float));
    ASSERT_TRUE(a.has_value() && b.has_value());
    std::vector<float> host(floats);
    for (u64 i = 0; i < floats; ++i) host[i] = static_cast<float>(i % 97);
    ASSERT_EQ(api.copy_in(a.value(), host), Status::Ok);
    ASSERT_EQ(api.copy_in(b.value(), host), Status::Ok);
    for (int round = 0; round < 3; ++round) {  // ping-pong: A and B evict each other
      for (const auto& p : {a, b}) {
        ASSERT_EQ(api.launch("addone", {{blocks, 1, 1}, {256, 1, 1}},
                             {sim::KernelArg::dev(p.value()),
                              sim::KernelArg::i64v(static_cast<i64>(floats))}),
                  Status::Ok);
      }
    }
    std::vector<float> out_a(floats);
    std::vector<float> out_b(floats);
    ASSERT_EQ(api.copy_out(out_a, a.value()), Status::Ok);
    ASSERT_EQ(api.copy_out(out_b, b.value()), Status::Ok);
    out_a.insert(out_a.end(), out_b.begin(), out_b.end());
    results.push_back(std::move(out_a));
  }
  EXPECT_EQ(results[0], results[1]);
}

}  // namespace
}  // namespace gpuvm::core
