// Tests for the simulated CUDA 3.2 runtime (cudart/cudart.hpp).
#include "cudart/cudart.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "sim/machine.hpp"

namespace gpuvm::cudart {
namespace {


class CudaRtTest : public ::testing::Test {
 protected:
  CudaRtTest() : guard_(dom_), machine_(dom_, sim::SimParams{1024}) {
    // One mem-scaled Tesla C2050: 3 MiB capacity, 64 KiB context slab.
    machine_.add_gpu(sim::tesla_c2050(machine_.params()));
    rt_ = std::make_unique<CudaRt>(machine_);

    sim::KernelDef def;
    def.name = "fill7";
    def.body = [](sim::KernelExecContext& ctx) {
      for (auto& v : ctx.buffer<float>(0)) v = 7.0f;
      return Status::Ok;
    };
    def.cost = sim::per_thread_cost(1.0, 4.0);
    machine_.kernels().add(def);
  }

  vt::Domain dom_;
  vt::AttachGuard guard_;
  sim::SimMachine machine_;
  std::unique_ptr<CudaRt> rt_;
};

TEST_F(CudaRtTest, ContextReservationMatchesPaperScale) {
  // 64 MiB / 1024 = 64 KiB.
  EXPECT_EQ(rt_->context_reservation_bytes(), 64u * 1024);
}

TEST_F(CudaRtTest, EightContextCeilingOnC2050) {
  // The paper: "the maximum number of application threads supported by the
  // CUDA runtime in the absence of conflicting memory requirements is
  // eight" (Tesla C2050). Contexts are created lazily at first malloc.
  std::vector<ClientId> clients;
  for (int i = 0; i < 8; ++i) {
    const ClientId c = rt_->create_client();
    clients.push_back(c);
    EXPECT_TRUE(rt_->malloc(c, 16).has_value()) << "context " << i;
  }
  EXPECT_EQ(rt_->contexts_on_device(0), 8);

  const ClientId ninth = rt_->create_client();
  auto result = rt_->malloc(ninth, 16);
  EXPECT_EQ(result.status(), Status::ErrorTooManyContexts);

  // Tearing one down admits a new context.
  rt_->destroy_client(clients.back());
  EXPECT_TRUE(rt_->malloc(ninth, 16).has_value());
  EXPECT_EQ(rt_->contexts_on_device(0), 8);
}

TEST_F(CudaRtTest, AggregateOverCommitFailsWithoutVirtualMemory) {
  // Two clients whose footprints fit individually but not together: the
  // second allocation burst hits cudaErrorMemoryAllocation -- the failure
  // mode gpuvm's memory manager exists to remove.
  const ClientId a = rt_->create_client();
  const ClientId b = rt_->create_client();
  // Capacity 3 MiB; two context slabs of 64 KiB leave ~2.9 MiB.
  ASSERT_TRUE(rt_->malloc(a, 1500 * 1024).has_value());
  auto second = rt_->malloc(b, 1500 * 1024);
  EXPECT_EQ(second.status(), Status::ErrorMemoryAllocation);
  EXPECT_EQ(rt_->get_last_error(b), Status::ErrorMemoryAllocation);
  EXPECT_EQ(rt_->get_last_error(b), Status::Ok);  // error is consumed
}

TEST_F(CudaRtTest, MemcpyAndKernelEndToEnd) {
  const ClientId c = rt_->create_client();
  auto ptr = rt_->malloc(c, 64 * sizeof(float));
  ASSERT_TRUE(ptr.has_value());

  std::vector<float> host(64);
  std::iota(host.begin(), host.end(), 0.0f);
  ASSERT_EQ(rt_->memcpy_h2d(c, ptr.value(), std::as_bytes(std::span(host))), Status::Ok);

  auto module = rt_->register_fat_binary(c);
  ASSERT_TRUE(module.has_value());
  ASSERT_EQ(rt_->register_function(c, module.value(), 0x1000, "fill7"), Status::Ok);
  ASSERT_EQ(rt_->configure_call(c, {{1, 1, 1}, {64, 1, 1}}), Status::Ok);
  ASSERT_EQ(rt_->setup_argument(c, sim::KernelArg::dev(ptr.value())), Status::Ok);
  ASSERT_EQ(rt_->launch(c, 0x1000), Status::Ok);

  std::vector<float> out(64);
  ASSERT_EQ(rt_->memcpy_d2h(c, std::as_writable_bytes(std::span(out)), ptr.value(),
                            out.size() * sizeof(float)),
            Status::Ok);
  for (float v : out) EXPECT_EQ(v, 7.0f);
}

TEST_F(CudaRtTest, LaunchWithoutConfigureFails) {
  const ClientId c = rt_->create_client();
  auto module = rt_->register_fat_binary(c);
  ASSERT_TRUE(module.has_value());
  ASSERT_EQ(rt_->register_function(c, module.value(), 0x1, "fill7"), Status::Ok);
  EXPECT_EQ(rt_->launch(c, 0x1), Status::ErrorInvalidConfiguration);
  EXPECT_EQ(rt_->setup_argument(c, sim::KernelArg::i64v(1)), Status::ErrorInvalidConfiguration);
}

TEST_F(CudaRtTest, LaunchUnregisteredHandleFails) {
  const ClientId c = rt_->create_client();
  ASSERT_EQ(rt_->configure_call(c, {{1, 1, 1}, {32, 1, 1}}), Status::Ok);
  EXPECT_EQ(rt_->launch(c, 0xdead), Status::ErrorUnknownSymbol);
}

TEST_F(CudaRtTest, LaunchUnknownKernelNameFails) {
  const ClientId c = rt_->create_client();
  auto module = rt_->register_fat_binary(c);
  ASSERT_EQ(rt_->register_function(c, module.value(), 0x1, "no_such_kernel"), Status::Ok);
  ASSERT_EQ(rt_->configure_call(c, {{1, 1, 1}, {32, 1, 1}}), Status::Ok);
  EXPECT_EQ(rt_->launch(c, 0x1), Status::ErrorUnknownSymbol);
}

TEST_F(CudaRtTest, SetDeviceRejectedOnceContextActive) {
  machine_.add_gpu(sim::tesla_c1060(machine_.params()));
  const ClientId c = rt_->create_client();
  EXPECT_EQ(rt_->set_device(c, 1), Status::Ok);   // before context: fine
  EXPECT_EQ(rt_->set_device(c, 0), Status::Ok);
  ASSERT_TRUE(rt_->malloc(c, 16).has_value());    // context on device 0
  EXPECT_EQ(rt_->set_device(c, 1), Status::ErrorInvalidValue);
  EXPECT_EQ(rt_->set_device(c, 0), Status::Ok);   // same device: allowed
  EXPECT_EQ(rt_->context_device(c).value(), 0);
}

TEST_F(CudaRtTest, SetDeviceOutOfRangeFails) {
  const ClientId c = rt_->create_client();
  EXPECT_EQ(rt_->set_device(c, 5), Status::ErrorInvalidDevice);
  EXPECT_EQ(rt_->set_device(c, -1), Status::ErrorInvalidDevice);
}

TEST_F(CudaRtTest, FreeForeignPointerRejected) {
  const ClientId a = rt_->create_client();
  const ClientId b = rt_->create_client();
  auto ptr = rt_->malloc(a, 256);
  ASSERT_TRUE(ptr.has_value());
  EXPECT_EQ(rt_->free(b, ptr.value()), Status::ErrorInvalidDevicePointer);
  EXPECT_EQ(rt_->free(a, ptr.value()), Status::Ok);
  EXPECT_EQ(rt_->free(a, ptr.value()), Status::ErrorInvalidDevicePointer);
}

TEST_F(CudaRtTest, DestroyClientReleasesDeviceMemory) {
  sim::SimGpu* gpu = machine_.gpu(machine_.all_gpus()[0]);
  const u64 before = gpu->used_bytes();
  const ClientId c = rt_->create_client();
  ASSERT_TRUE(rt_->malloc(c, 512 * 1024).has_value());
  EXPECT_GT(gpu->used_bytes(), before);
  rt_->destroy_client(c);
  EXPECT_EQ(gpu->used_bytes(), before);
  EXPECT_EQ(rt_->contexts_on_device(0), 0);
}

TEST_F(CudaRtTest, DeviceFailurePropagates) {
  const ClientId c = rt_->create_client();
  auto ptr = rt_->malloc(c, 256);
  ASSERT_TRUE(ptr.has_value());
  machine_.fail_gpu(machine_.all_gpus()[0]);
  std::vector<std::byte> buf(16);
  EXPECT_EQ(rt_->memcpy_h2d(c, ptr.value(), buf), Status::ErrorDeviceUnavailable);
  EXPECT_EQ(rt_->device_synchronize(c), Status::ErrorDeviceUnavailable);
  EXPECT_EQ(rt_->malloc(c, 16).status(), Status::ErrorDeviceUnavailable);
}

TEST_F(CudaRtTest, MallocPitchPadsRows) {
  const ClientId c = rt_->create_client();
  auto ptr = rt_->malloc_pitch(c, 100, 10);
  ASSERT_TRUE(ptr.has_value());
  EXPECT_EQ(ptr->pitch, 256u);
}

TEST_F(CudaRtTest, PinnedFcfsServiceAcrossClients) {
  // Two clients issue kernels concurrently on one device; the engine
  // serializes them (CUDA 3.2 semantics: contexts time-share).
  const ClientId a = rt_->create_client();
  const ClientId b = rt_->create_client();
  ASSERT_TRUE(rt_->malloc(a, 16).has_value());
  ASSERT_TRUE(rt_->malloc(b, 16).has_value());

  sim::KernelDef slow;
  slow.name = "slow";
  slow.body = [](sim::KernelExecContext&) { return Status::Ok; };
  slow.cost = [](const sim::LaunchConfig&, const std::vector<sim::KernelArg>&) {
    return sim::KernelCost{345e6, 0.0};  // 1ms on a C2050
  };
  machine_.kernels().add(slow);

  vt::TimePoint end_a{};
  vt::TimePoint end_b{};
  {
    dom_.hold();
    vt::Thread ta(dom_, [&] {
      EXPECT_EQ(rt_->launch_by_name(a, "slow", {{1, 1, 1}, {32, 1, 1}}, {}), Status::Ok);
      end_a = dom_.now();
    });
    vt::Thread tb(dom_, [&] {
      EXPECT_EQ(rt_->launch_by_name(b, "slow", {{1, 1, 1}, {32, 1, 1}}, {}), Status::Ok);
      end_b = dom_.now();
    });
    dom_.unhold();
  }
  EXPECT_GE(std::max(end_a, end_b), vt::from_millis(2));
}

TEST_F(CudaRtTest, Memcpy2DRespectsPitches) {
  const ClientId c = rt_->create_client();
  auto ptr = rt_->malloc_pitch(c, 100, 4);
  ASSERT_TRUE(ptr.has_value());
  const u64 pitch = ptr->pitch;
  ASSERT_EQ(pitch, 256u);

  std::vector<std::byte> src(100 * 4);
  for (size_t i = 0; i < src.size(); ++i) src[i] = static_cast<std::byte>(i % 250);
  ASSERT_EQ(rt_->memcpy2d_h2d(c, ptr->ptr, pitch, src, 100, 100, 4), Status::Ok);
  std::vector<std::byte> dst(100 * 4, std::byte{0});
  ASSERT_EQ(rt_->memcpy2d_d2h(c, dst, 100, ptr->ptr, pitch, 100, 4), Status::Ok);
  EXPECT_EQ(dst, src);

  // width > pitch is invalid geometry.
  EXPECT_EQ(rt_->memcpy2d_h2d(c, ptr->ptr, 64, src, 100, 100, 4),
            Status::ErrorInvalidValue);
}

TEST_F(CudaRtTest, MemcpyPeerMovesDataAcrossDevices) {
  machine_.add_gpu(sim::tesla_c1060(machine_.params()));
  const ClientId a = rt_->create_client();
  ASSERT_EQ(rt_->set_device(a, 0), Status::Ok);
  const ClientId b = rt_->create_client();
  ASSERT_EQ(rt_->set_device(b, 1), Status::Ok);

  auto src = rt_->malloc(a, 64);
  auto dst = rt_->malloc(b, 64);
  ASSERT_TRUE(src && dst);
  std::vector<std::byte> data(64, std::byte{0x42});
  ASSERT_EQ(rt_->memcpy_h2d(a, src.value(), data), Status::Ok);

  ASSERT_EQ(rt_->memcpy_peer(b, dst.value(), src.value(), 64), Status::Ok);
  std::vector<std::byte> out(64);
  ASSERT_EQ(rt_->memcpy_d2h(b, out, dst.value(), 64), Status::Ok);
  EXPECT_EQ(out, data);

  // Unknown source address fails cleanly.
  EXPECT_EQ(rt_->memcpy_peer(b, dst.value(), DevicePtr{0xdead}, 8),
            Status::ErrorInvalidDevicePointer);
}

TEST_F(CudaRtTest, RegistrationDoesNotCreateContext) {
  const ClientId c = rt_->create_client();
  auto module = rt_->register_fat_binary(c);
  ASSERT_TRUE(module.has_value());
  ASSERT_EQ(rt_->register_function(c, module.value(), 0x1, "fill7"), Status::Ok);
  ASSERT_EQ(rt_->register_var(c, module.value(), "coeffs", 64), Status::Ok);
  ASSERT_EQ(rt_->register_texture(c, module.value(), "tex"), Status::Ok);
  EXPECT_EQ(rt_->contexts_on_device(0), 0);  // still no device footprint
  EXPECT_FALSE(rt_->context_device(c).has_value());
}

}  // namespace
}  // namespace gpuvm::cudart
