// Figure 6: benefits of GPU sharing. The full paper node (2x Tesla C2050 +
// 1x Tesla C1060) runs 8-48 concurrent short jobs under gpuvm with 1, 2 and
// 4 vGPUs per device; the bare CUDA runtime appears only up to 8 jobs (it
// "cannot handle more than eight concurrent jobs stably"). More sharing =
// better total time, saturating around 4 vGPUs.
#include "bench_common.hpp"

namespace gpuvm::bench {
namespace {

std::vector<workloads::JobSpec> draw(int jobs, u64 seed) {
  return no_verify(
      workloads::BatchRunner::random_batch(workloads::short_running_names(), jobs, seed));
}

void Fig6Cuda(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  u64 seed = 10;
  for (auto _ : state) {
    NodeEnv env(paper_node_gpus());
    report_outcome(state, env.run_direct(draw(jobs, seed++)));
  }
}

void Fig6Gpuvm(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  const int vgpus = static_cast<int>(state.range(1));
  u64 seed = 10;
  for (auto _ : state) {
    NodeEnv env(paper_node_gpus(), sharing_config(vgpus));
    report_outcome(state, env.run_gpuvm(draw(jobs, seed++)));
  }
}

}  // namespace
}  // namespace gpuvm::bench

int main(int argc, char** argv) {
  using namespace gpuvm::bench;
  const int runs = bench_runs();
  // Bare CUDA handles at most 8 concurrent jobs.
  benchmark::RegisterBenchmark("Fig6/CUDA_runtime", Fig6Cuda)
      ->Args({8})
      ->ArgNames({"jobs"})
      ->UseManualTime()
      ->Unit(benchmark::kSecond)
      ->Iterations(runs);
  for (int vgpus : {1, 2, 4}) {
    for (int jobs : {8, 16, 32, 48}) {
      benchmark::RegisterBenchmark("Fig6/gpuvm", Fig6Gpuvm)
          ->Args({jobs, vgpus})
          ->ArgNames({"jobs", "vgpus"})
          ->UseManualTime()
          ->Unit(benchmark::kSecond)
          ->Iterations(runs);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
