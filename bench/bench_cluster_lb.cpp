// Cluster load-balancing benchmark: RoundRobin vs LeastLoaded placement.
//
// A skewed three-node cluster (4/2/1 test GPUs) runs the same batch of
// identical jobs under both head-node dispatch policies. RoundRobin -- the
// paper's TORQUE baseline, blind to load -- divides the batch equally, so
// the single-GPU node dominates the makespan. LeastLoaded watches the
// NodeDirectory's heartbeat-fed LoadSnapshots and shifts work toward the
// wide node, shortening the straggler tail.
//
// Times are modeled (virtual-clock) seconds; each policy gets a fresh
// cluster so the runs are independent. Emits machine-readable JSON (default
// BENCH_cluster_lb.json) with both makespans plus the LL/RR ratio -- the
// number the CI cluster-lb job tracks (asserts <= 0.9).
//
// Flags: --out <path>  --jobs <n>  --kernels <n>  --quick
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/dispatch_policy.hpp"
#include "cluster/torque.hpp"

namespace {

using namespace gpuvm;

// Skewed GPU counts per node: the whole point of load-aware placement.
constexpr int kGpusPerNode[] = {4, 2, 1};
constexpr int kVgpusPerDevice = 2;
constexpr double kKernelFlops = 1e8;  // 1 ms on the 100-GFLOPS test GPU
constexpr double kCpuMsBetweenKernels = 0.5;

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "bench_cluster_lb: %s\n", what);
  std::exit(1);
}

struct PolicyRun {
  double makespan_seconds = 0.0;
  double avg_job_seconds = 0.0;
  std::vector<int> jobs_per_node;  // indexed like kGpusPerNode
};

PolicyRun run_policy(const std::string& policy, int jobs, int kernels) {
  vt::Domain dom;
  vt::AttachGuard guard(dom);

  std::vector<cluster::NodeSpec> specs;
  for (size_t n = 0; n < std::size(kGpusPerNode); ++n) {
    cluster::NodeSpec spec;
    spec.name = "node-" + std::to_string(n);
    for (int g = 0; g < kGpusPerNode[n]; ++g) spec.gpus.push_back(sim::test_gpu());
    specs.push_back(std::move(spec));
  }
  core::RuntimeConfig config;
  config.scheduler.vgpus_per_device = kVgpusPerDevice;
  cluster::Cluster cl(dom, sim::SimParams{1}, specs, config, cudart::CudaRtConfig{4 * 1024, 8});

  sim::KernelDef burn;
  burn.name = "burn";
  burn.body = [](sim::KernelExecContext&) { return Status::Ok; };
  burn.cost = [](const sim::LaunchConfig&, const std::vector<sim::KernelArg>&) {
    return sim::KernelCost{kKernelFlops, 0.0};
  };
  cl.register_kernel(burn);

  // Heartbeats much faster than the dispatch stagger: every placement is
  // visible to the directory before the next decision.
  cluster::DirectoryConfig dir;
  dir.heartbeat_interval = vt::from_micros(199.0);
  cl.enable_load_reports(dir);

  cluster::TorqueScheduler::Options options;
  options.sched.dispatch_policy = policy;
  options.directory = cl.directory();
  options.sched.dispatch_interval_seconds = 0.001;
  cluster::TorqueScheduler torque(dom, cl.node_pointers(), std::move(options));

  std::atomic<int> done{0};
  for (int j = 0; j < jobs; ++j) {
    cluster::Job job;
    job.name = "burn-loop";
    job.body = [&dom, kernels, &done](core::GpuApi& api) {
      if (!ok(api.register_kernels({"burn"}))) die("register failed");
      auto ptr = api.malloc(1024);
      if (!ptr) die("malloc failed");
      for (int i = 0; i < kernels; ++i) {
        if (!ok(api.launch("burn", {{1, 1, 1}, {64, 1, 1}},
                           {sim::KernelArg::dev(ptr.value())}))) {
          die("launch failed");
        }
        dom.sleep_for(vt::from_millis(kCpuMsBetweenKernels));
      }
      done.fetch_add(1);
    };
    torque.submit(std::move(job));
  }

  const cluster::BatchResult batch = torque.run_to_completion();
  if (done.load() != jobs) die("jobs lost");

  PolicyRun run;
  run.makespan_seconds = batch.total_seconds;
  run.avg_job_seconds = batch.avg_seconds;
  run.jobs_per_node.assign(std::size(kGpusPerNode), 0);
  std::map<u64, size_t> node_index;
  for (size_t n = 0; n < cl.size(); ++n) node_index[cl.node(n).id().value] = n;
  for (const auto& job : batch.jobs) ++run.jobs_per_node[node_index.at(job.node.value)];
  cl.stop_load_reports();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_cluster_lb.json";
  int jobs = 30;
  int kernels = 6;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) die("missing flag value");
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--out") == 0) {
      out_path = next();
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      jobs = std::atoi(next());
      if (jobs <= 0) die("bad --jobs");
    } else if (std::strcmp(argv[i], "--kernels") == 0) {
      kernels = std::atoi(next());
      if (kernels <= 0) die("bad --kernels");
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      jobs = 15;
      kernels = 4;
    } else {
      die("unknown flag (expected --out/--jobs/--kernels/--quick)");
    }
  }

  struct Entry {
    const char* name;
    PolicyRun run;
  };
  Entry entries[] = {
      {"round_robin", {}},
      {"least_loaded", {}},
  };
  for (Entry& e : entries) {
    e.run = run_policy(e.name, jobs, kernels);
    std::printf("%-12s makespan=%8.4fs avg_job=%8.4fs placement=[%d,%d,%d]\n", e.name,
                e.run.makespan_seconds, e.run.avg_job_seconds, e.run.jobs_per_node[0],
                e.run.jobs_per_node[1], e.run.jobs_per_node[2]);
  }

  const double ratio = entries[1].run.makespan_seconds / entries[0].run.makespan_seconds;

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) die("cannot open --out file");
  std::fprintf(f, "{\n  \"bench\": \"cluster_lb\",\n  \"jobs\": %d,\n  \"kernels_per_job\": %d,\n",
               jobs, kernels);
  std::fprintf(f, "  \"gpus_per_node\": [%d, %d, %d],\n  \"vgpus_per_device\": %d,\n",
               kGpusPerNode[0], kGpusPerNode[1], kGpusPerNode[2], kVgpusPerDevice);
  std::fprintf(f, "  \"policies\": {\n");
  for (size_t m = 0; m < std::size(entries); ++m) {
    const PolicyRun& r = entries[m].run;
    std::fprintf(f,
                 "    \"%s\": {\"makespan_seconds\": %.6f, \"avg_job_seconds\": %.6f, "
                 "\"jobs_per_node\": [%d, %d, %d]}%s\n",
                 entries[m].name, r.makespan_seconds, r.avg_job_seconds, r.jobs_per_node[0],
                 r.jobs_per_node[1], r.jobs_per_node[2],
                 m + 1 < std::size(entries) ? "," : "");
  }
  std::fprintf(f, "  },\n  \"ll_over_rr_makespan\": %.4f\n}\n", ratio);
  std::fclose(f);
  std::printf("ll_over_rr_makespan=%.4f -> %s\n", ratio, out_path.c_str());
  return 0;
}
