// Figure 9: load balancing through dynamic binding. An unbalanced node
// (two fast Tesla C2050s, one slow Quadro 2000) runs 12/24/36 MM-S jobs
// with CPU fraction 0 and 1, with and without migration-based load
// balancing. Migrating jobs from the slow to the fast GPUs as they become
// idle improves the batch, especially for small batches of jobs with CPU
// phases; the migration counter annotates each bar.
#include "bench_common.hpp"

namespace gpuvm::bench {
namespace {

std::vector<workloads::JobSpec> mms_batch(int count, double cpu_fraction, u64 seed) {
  std::vector<workloads::JobSpec> jobs;
  for (int i = 0; i < count; ++i) {
    jobs.push_back({"MM-S", cpu_fraction, seed * 100 + static_cast<u64>(i), false});
  }
  return jobs;
}

void Fig9(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  const double cpu_fraction = static_cast<double>(state.range(1));
  const bool balance = state.range(2) != 0;
  u64 seed = 40;
  u64 migrations = 0;
  for (auto _ : state) {
    core::RuntimeConfig config = sharing_config(4);
    config.scheduler.enable_migration = balance;
    NodeEnv env(unbalanced_node_gpus(), config);
    report_outcome(state, env.run_gpuvm(mms_batch(jobs, cpu_fraction, seed++)));
    migrations = env.runtime_->scheduler().stats().migrations;
  }
  state.counters["migrations"] = static_cast<double>(migrations);
}

}  // namespace
}  // namespace gpuvm::bench

int main(int argc, char** argv) {
  using namespace gpuvm::bench;
  for (int cpu : {0, 1}) {
    for (int balance : {0, 1}) {
      for (int jobs : {12, 24, 36}) {
        const char* label = balance != 0 ? "Fig9/load_balancing" : "Fig9/no_load_balancing";
        benchmark::RegisterBenchmark(label, Fig9)
            ->Args({jobs, cpu, balance})
            ->ArgNames({"jobs", "cpu_frac", "lb"})
            ->UseManualTime()
            ->Unit(benchmark::kSecond)
            ->Iterations(1);
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
