// N-tenant contention throughput benchmark for the dispatch hot path.
//
// Measures aggregate tenant throughput (full malloc -> copyHD -> launch ->
// copyDH -> free cycles per modeled second) at 1/4/8/16 concurrent tenants
// under the two dispatch disciplines:
//
//   global_lock  -- the pre-sharding baseline: one daemon-wide lock held
//                   across every call, synchronous eviction write-back.
//   sharded      -- per-context locks, sharded tables, async write-back.
//
// Times are modeled (virtual-clock) seconds: the speedup comes from
// overlapping the modeled device/engine/channel delays across tenants, not
// from host-side lock spinning. Kernel bodies are skipped (correctness is
// covered by the test suite).
//
// Emits machine-readable JSON (default BENCH_throughput.json) with both
// modes' ops/sec per tenant count plus the 8-tenant speedup -- the number
// the CI bench smoke job tracks.
//
// --trace-overhead switches to the tracing-cost smoke mode the CI trace
// job runs: the same 8-tenant sharded workload back to back with the obs
// TraceRecorder detached, then attached, timed in host wall-clock (the
// modeled virtual makespan is identical by construction -- tracing costs
// no virtual time -- so only wall time can show the instrumentation tax).
// Best-of-N wall times keep scheduler noise out of the ratio. Emits
// {"overhead_ratio": traced/untraced, ...} and optionally the captured
// trace (--trace-out) as the CI artifact.
//
// Flags: --out <path>  --iters <n>  --tenant-counts <csv>  --quick
//        --trace-overhead  --reps <n>  --trace-out <path.json>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/frontend.hpp"
#include "core/runtime.hpp"
#include "obs/trace.hpp"
#include "sim/machine.hpp"

namespace {

using namespace gpuvm;

constexpr u64 kDevBytes = 8ull << 20;  // 8 MiB per GPU: no swap pressure
constexpr int kGpus = 4;
constexpr int kVgpusPerDevice = 4;  // 16 vGPUs: global_lock safe up to 16 tenants
constexpr u64 kFloats = 16 * 1024;  // 64 KiB working buffer per cycle

sim::SimParams bench_params() {
  sim::SimParams params;
  params.execute_kernel_bodies = false;
  return params;
}

void register_kernel(sim::SimMachine& machine) {
  sim::KernelDef busy;
  busy.name = "busy";
  busy.body = [](sim::KernelExecContext&) { return Status::Ok; };
  // ~200us of compute on the 100-GFLOPS test GPU: engine time dominates
  // the per-call channel hops, as in the paper's workloads.
  busy.cost = [](const sim::LaunchConfig&, const std::vector<sim::KernelArg>&) {
    return sim::KernelCost{2e7, 0.0};
  };
  machine.kernels().add(busy);
}

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "bench_throughput: %s\n", what);
  std::exit(1);
}

/// One full environment run; returns aggregate ops per modeled second.
struct RunResult {
  double ops_per_sec = 0.0;
  double elapsed_seconds = 0.0;
  u64 lock_contended = 0;
  u64 async_writebacks = 0;
  u64 trace_events = 0;
};

RunResult run_mode(core::DispatchMode mode, bool async_writeback, int tenants, int iters,
                   bool traced = false, std::string* trace_json = nullptr) {
  vt::Domain dom;
  vt::AttachGuard guard(dom);
  // The recorder shares the run's domain so event stamps use its clock;
  // scoped so untraced runs pay literally zero instrumentation cost beyond
  // the null-check in the emit helpers.
  std::optional<obs::TraceRecorder> recorder;
  std::optional<obs::ScopedTracer> scoped;
  if (traced) {
    recorder.emplace(dom);
    scoped.emplace(*recorder);
  }
  sim::SimMachine machine(dom, bench_params());
  for (int i = 0; i < kGpus; ++i) machine.add_gpu(sim::test_gpu(kDevBytes));
  register_kernel(machine);
  cudart::CudaRt rt(machine, cudart::CudaRtConfig{4 * 1024, 64});
  core::RuntimeConfig config;
  config.dispatch_mode = mode;
  config.async_writeback = async_writeback;
  config.scheduler.vgpus_per_device = kVgpusPerDevice;
  core::Runtime runtime(rt, config);

  const auto tenant_loop = [&](int tenant) {
    core::FrontendApi api(runtime.connect());
    if (!api.connected()) die("handshake failed");
    if (!ok(api.register_kernels({"busy"}))) die("register failed");
    std::vector<float> host(kFloats, static_cast<float>(tenant));
    std::vector<float> back(kFloats);
    for (int i = 0; i < iters; ++i) {
      auto ptr = api.malloc(kFloats * sizeof(float));
      if (!ptr) die("malloc failed");
      if (!ok(api.copy_in(ptr.value(), host))) die("copy_in failed");
      if (!ok(api.launch("busy", {{64, 1, 1}, {256, 1, 1}},
                         {sim::KernelArg::dev(ptr.value())}))) {
        die("launch failed");
      }
      if (!ok(api.copy_out(back, ptr.value()))) die("copy_out failed");
      if (!ok(api.free(ptr.value()))) die("free failed");
      dom.sleep_for(vt::from_micros(50));  // short CPU phase between cycles
    }
  };

  vt::StopWatch watch(dom);
  {
    dom.hold();
    std::vector<vt::Thread> apps;
    for (int t = 0; t < tenants; ++t) {
      apps.emplace_back(dom, [&, t] { tenant_loop(t); });
    }
    dom.unhold();
  }
  runtime.drain();

  RunResult result;
  result.elapsed_seconds = watch.elapsed_seconds();
  result.ops_per_sec =
      static_cast<double>(tenants) * iters / std::max(result.elapsed_seconds, 1e-12);
  result.lock_contended = runtime.stats().dispatch_lock_contended;
  result.async_writebacks = runtime.memory().stats().async_writebacks;
  if (recorder.has_value()) {
    result.trace_events = recorder->size();
    if (trace_json != nullptr) *trace_json = recorder->export_chrome_json();
  }
  return result;
}

/// One wall-clock-timed run of the sharded workload, optionally traced.
/// Returns host seconds (the virtual makespan is trace-invariant).
double run_walltimed(int tenants, int iters, bool traced, std::string* trace_json,
                     u64* trace_events) {
  const auto start = std::chrono::steady_clock::now();
  const RunResult r = run_mode(core::DispatchMode::Sharded, /*async_writeback=*/true, tenants,
                               iters, traced, trace_json);
  const auto stop = std::chrono::steady_clock::now();
  if (trace_events != nullptr) *trace_events = r.trace_events;
  return std::chrono::duration<double>(stop - start).count();
}

/// Tracing-cost smoke: best-of-`reps` wall time with tracing off vs on.
int run_trace_overhead(const std::string& out_path, const std::string& trace_out, int tenants,
                       int iters, int reps) {
  double best_off = 0.0;
  double best_on = 0.0;
  std::string trace_json;
  for (int r = 0; r < reps; ++r) {
    const double off = run_walltimed(tenants, iters, false, nullptr, nullptr);
    u64 events = 0;
    const bool want_json = r == 0 && !trace_out.empty();
    const double on =
        run_walltimed(tenants, iters, true, want_json ? &trace_json : nullptr, &events);
    if (r == 0 || off < best_off) best_off = off;
    if (r == 0 || on < best_on) best_on = on;
    std::printf("rep %d: untraced %.4fs traced %.4fs (%llu events)\n", r, off, on,
                static_cast<unsigned long long>(events));
  }
  const double total_ops = static_cast<double>(tenants) * iters;
  const double ratio = best_on / std::max(best_off, 1e-12);

  if (!trace_out.empty() && !trace_json.empty()) {
    FILE* tf = std::fopen(trace_out.c_str(), "w");
    if (tf == nullptr) die("cannot open --trace-out file");
    std::fputs(trace_json.c_str(), tf);
    std::fclose(tf);
    std::printf("trace written to %s\n", trace_out.c_str());
  }

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) die("cannot open --out file");
  std::fprintf(f,
               "{\n  \"bench\": \"trace_overhead\",\n  \"tenants\": %d,\n"
               "  \"iters_per_tenant\": %d,\n  \"reps\": %d,\n"
               "  \"untraced_wall_seconds\": %.6f,\n  \"traced_wall_seconds\": %.6f,\n"
               "  \"untraced_ops_per_sec\": %.1f,\n  \"traced_ops_per_sec\": %.1f,\n"
               "  \"overhead_ratio\": %.4f\n}\n",
               tenants, iters, reps, best_off, best_on, total_ops / std::max(best_off, 1e-12),
               total_ops / std::max(best_on, 1e-12), ratio);
  std::fclose(f);
  std::printf("trace overhead ratio=%.4f (traced/untraced wall time) -> %s\n", ratio,
              out_path.c_str());
  return 0;
}

std::vector<int> parse_counts(const char* csv) {
  std::vector<int> counts;
  std::string s(csv);
  size_t pos = 0;
  while (pos < s.size()) {
    const size_t comma = s.find(',', pos);
    const std::string tok = s.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const int n = std::atoi(tok.c_str());
    if (n <= 0) die("bad --tenant-counts");
    counts.push_back(n);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return counts;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_throughput.json";
  std::string trace_out;
  int iters = 40;
  int reps = 3;
  bool trace_overhead = false;
  std::vector<int> counts = {1, 4, 8, 16};
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) die("missing flag value");
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--out") == 0) {
      out_path = next();
    } else if (std::strcmp(argv[i], "--iters") == 0) {
      iters = std::atoi(next());
      if (iters <= 0) die("bad --iters");
    } else if (std::strcmp(argv[i], "--tenant-counts") == 0) {
      counts = parse_counts(next());
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      iters = 8;
      counts = {1, 8};
    } else if (std::strcmp(argv[i], "--trace-overhead") == 0) {
      trace_overhead = true;
    } else if (std::strcmp(argv[i], "--reps") == 0) {
      reps = std::atoi(next());
      if (reps <= 0) die("bad --reps");
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      trace_out = next();
    } else {
      die("unknown flag (expected --out/--iters/--tenant-counts/--quick/"
          "--trace-overhead/--reps/--trace-out)");
    }
  }

  if (trace_overhead) {
    return run_trace_overhead(out_path, trace_out, /*tenants=*/8, iters, reps);
  }

  struct Mode {
    const char* name;
    core::DispatchMode mode;
    bool async_writeback;
  };
  const Mode modes[] = {
      {"global_lock", core::DispatchMode::GlobalLock, false},
      {"sharded", core::DispatchMode::Sharded, true},
  };

  std::vector<std::vector<RunResult>> results(2);
  for (size_t m = 0; m < 2; ++m) {
    for (int tenants : counts) {
      const RunResult r = run_mode(modes[m].mode, modes[m].async_writeback, tenants, iters);
      results[m].push_back(r);
      std::printf("%-12s tenants=%-3d ops/sec=%10.1f modeled_s=%.4f contended=%llu\n",
                  modes[m].name, tenants, r.ops_per_sec, r.elapsed_seconds,
                  static_cast<unsigned long long>(r.lock_contended));
    }
  }

  double speedup8 = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 8) speedup8 = results[1][i].ops_per_sec / results[0][i].ops_per_sec;
  }

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) die("cannot open --out file");
  std::fprintf(f, "{\n  \"bench\": \"throughput\",\n  \"iters_per_tenant\": %d,\n", iters);
  std::fprintf(f, "  \"gpus\": %d,\n  \"vgpus_per_device\": %d,\n", kGpus, kVgpusPerDevice);
  std::fprintf(f, "  \"modes\": {\n");
  for (size_t m = 0; m < 2; ++m) {
    std::fprintf(f, "    \"%s\": [\n", modes[m].name);
    for (size_t i = 0; i < counts.size(); ++i) {
      const RunResult& r = results[m][i];
      std::fprintf(f,
                   "      {\"tenants\": %d, \"ops_per_sec\": %.1f, "
                   "\"modeled_seconds\": %.6f, \"dispatch_lock_contended\": %llu, "
                   "\"async_writebacks\": %llu}%s\n",
                   counts[i], r.ops_per_sec, r.elapsed_seconds,
                   static_cast<unsigned long long>(r.lock_contended),
                   static_cast<unsigned long long>(r.async_writebacks),
                   i + 1 < counts.size() ? "," : "");
    }
    std::fprintf(f, "    ]%s\n", m == 0 ? "," : "");
  }
  std::fprintf(f, "  },\n  \"speedup_8_tenants\": %.3f\n}\n", speedup8);
  std::fclose(f);
  std::printf("speedup_8_tenants=%.3f -> %s\n", speedup8, out_path.c_str());
  return 0;
}
