// Figure 8: workload composition. 36 long jobs mixing BS-L (GPU-intensive,
// short CPU phases, smaller footprint) and MM-L (CPU fraction 1, large
// footprint) at ratios from 100/0 to 0/100 BS-L/MM-L, on the 3-GPU node.
// The gain from sharing grows as MM-L dominates; at the BS-L-heavy 75/25
// mix, swap overhead can make sharing slightly slower than serialized.
#include "bench_common.hpp"

namespace gpuvm::bench {
namespace {

constexpr int kJobs = 36;

void Fig8(benchmark::State& state) {
  const int mml_percent = static_cast<int>(state.range(0));
  const int vgpus = static_cast<int>(state.range(1));
  u64 seed = 30;
  u64 swaps = 0;
  for (auto _ : state) {
    NodeEnv env(paper_node_gpus(), sharing_config(vgpus));
    report_outcome(state,
                   env.run_gpuvm(mixed_long_batch(kJobs, mml_percent, 1.0, seed++)));
    const auto mem = env.runtime_->memory().stats();
    swaps = mem.inter_app_swaps + mem.intra_app_swaps;
  }
  state.counters["swaps"] = static_cast<double>(swaps);
}

}  // namespace
}  // namespace gpuvm::bench

int main(int argc, char** argv) {
  using namespace gpuvm::bench;
  for (int vgpus : {1, 4}) {
    // Paper axis: fraction BlackScholes/Matmul = 100/0 ... 0/100.
    for (int mml_percent : {0, 25, 50, 75, 100}) {
      const char* label = vgpus == 1 ? "Fig8/serialized_1vGPU" : "Fig8/sharing_4vGPUs";
      benchmark::RegisterBenchmark(label, Fig8)
          ->Args({mml_percent, vgpus})
          ->ArgNames({"matmul_pct", "vgpus"})
          ->UseManualTime()
          ->Unit(benchmark::kSecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
