// Ablation: transfer deferral (section 4.5). "Data transfers preceding the
// first kernel call ... can be deferred without incurring performance
// losses. After the first kernel call ... deferring or not deferring" trades
// computation/communication overlap against swap overhead. Runs the MM-L
// sharing workload (swap-heavy) and a BS-L batch (transfer-heavy, swap-free)
// under both configurations.
#include "bench_common.hpp"

namespace gpuvm::bench {
namespace {

void AblationDefer(benchmark::State& state, const char* workload, bool defer) {
  const int jobs = static_cast<int>(state.range(0));
  u64 seed = 70;
  u64 swaps = 0;
  for (auto _ : state) {
    core::RuntimeConfig config = sharing_config(4);
    config.defer_transfers = defer;
    NodeEnv env(paper_node_gpus(), config);
    std::vector<workloads::JobSpec> batch;
    for (int i = 0; i < jobs; ++i) {
      batch.push_back({workload, workload == std::string("MM-L") ? 1.0 : 0.0,
                       seed * 100 + static_cast<u64>(i), false});
    }
    ++seed;
    report_outcome(state, env.run_gpuvm(batch));
    const auto mem = env.runtime_->memory().stats();
    swaps = mem.inter_app_swaps + mem.intra_app_swaps;
    state.counters["bulk_transfers"] = static_cast<double>(mem.bulk_transfers);
  }
  state.counters["swaps"] = static_cast<double>(swaps);
}

}  // namespace
}  // namespace gpuvm::bench

int main(int argc, char** argv) {
  using namespace gpuvm::bench;
  for (const char* workload : {"MM-L", "BS-L"}) {
    for (bool defer : {true, false}) {
      std::string label = std::string("AblationDefer/") + workload + "/" +
                          (defer ? "deferred" : "eager");
      benchmark::RegisterBenchmark(label.c_str(),
                                   [workload, defer](benchmark::State& state) {
                                     AblationDefer(state, workload, defer);
                                   })
          ->Args({12})
          ->ArgNames({"jobs"})
          ->UseManualTime()
          ->Unit(benchmark::kSecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
