// Table 2: the benchmark programs. Runs each application once, alone, on a
// Tesla C2050 and reports its modeled runtime and kernel-call count. The
// paper's bands: short-running 3-5 s, long-running 30-90 s.
#include "bench_common.hpp"

namespace gpuvm::bench {
namespace {

void Table2App(benchmark::State& state, const std::string& name, double cpu_fraction) {
  const workloads::Workload* app = workloads::find_workload(name);
  for (auto _ : state) {
    NodeEnv env({sim::tesla_c2050(bench_params())});
    core::DirectApi api(*env.rt_);
    workloads::AppContext ctx;
    ctx.dom = &env.dom_;
    ctx.api = &api;
    ctx.params = env.machine_.params();
    ctx.cpu_fraction = cpu_fraction;
    ctx.verify = false;
    const vt::StopWatch watch(env.dom_);
    const auto result = app->run(ctx);
    state.SetIterationTime(watch.elapsed_seconds());
    state.counters["kernel_calls"] = result.kernel_launches;
    if (!result.success()) state.counters["FAILED"] = 1;
  }
}

}  // namespace
}  // namespace gpuvm::bench

int main(int argc, char** argv) {
  using gpuvm::bench::Table2App;
  for (const std::string& name : gpuvm::workloads::all_workload_names()) {
    const double cpu_fraction =
        (name == "MM-S" || name == "MM-L") ? 1.0 : 0.0;  // mid-range CPU phase
    benchmark::RegisterBenchmark(("Table2/" + name).c_str(),
                                 [name, cpu_fraction](benchmark::State& state) {
                                   Table2App(state, name, cpu_fraction);
                                 })
        ->UseManualTime()
        ->Unit(benchmark::kSecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
