// Section 1's motivating observation: "the maximum number of application
// threads supported by the CUDA runtime in the absence of conflicting
// memory requirements is eight" (Tesla C2050). Sweeps concurrent client
// counts on the bare runtime and reports how many obtained a context, and
// contrasts it with gpuvm, which admits them all by multiplexing onto vGPUs.
#include "bench_common.hpp"

#include "core/frontend.hpp"

namespace gpuvm::bench {
namespace {

void CtxLimitCuda(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  int admitted = 0;
  for (auto _ : state) {
    NodeEnv env({sim::tesla_c2050(bench_params())});
    admitted = 0;
    std::vector<ClientId> ids;
    const vt::StopWatch watch(env.dom_);
    for (int i = 0; i < clients; ++i) {
      const ClientId c = env.rt_->create_client();
      ids.push_back(c);
      if (env.rt_->malloc(c, 1024).has_value()) ++admitted;
    }
    state.SetIterationTime(std::max(watch.elapsed_seconds(), 1e-9));
    for (ClientId c : ids) env.rt_->destroy_client(c);
  }
  state.counters["admitted"] = admitted;
  state.counters["rejected"] = clients - admitted;
}

void CtxLimitGpuvm(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  int admitted = 0;
  for (auto _ : state) {
    NodeEnv env({sim::tesla_c2050(bench_params())}, sharing_config(4));
    admitted = 0;
    std::vector<std::unique_ptr<core::FrontendApi>> apis;
    const vt::StopWatch watch(env.dom_);
    for (int i = 0; i < clients; ++i) {
      apis.push_back(std::make_unique<core::FrontendApi>(env.runtime_->connect()));
      if (apis.back()->connected() && apis.back()->malloc(1024).has_value()) ++admitted;
    }
    state.SetIterationTime(std::max(watch.elapsed_seconds(), 1e-9));
  }
  state.counters["admitted"] = admitted;
  state.counters["rejected"] = clients - admitted;
}

}  // namespace
}  // namespace gpuvm::bench

int main(int argc, char** argv) {
  using namespace gpuvm::bench;
  for (int clients : {4, 8, 9, 16, 32}) {
    benchmark::RegisterBenchmark("CtxLimit/CUDA_runtime", CtxLimitCuda)
        ->Args({clients})
        ->ArgNames({"clients"})
        ->UseManualTime()
        ->Unit(benchmark::kMicrosecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark("CtxLimit/gpuvm", CtxLimitGpuvm)
        ->Args({clients})
        ->ArgNames({"clients"})
        ->UseManualTime()
        ->Unit(benchmark::kMicrosecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
