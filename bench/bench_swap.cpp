// Swap-churn benchmark for the incremental swap engine.
//
// Two oversubscribed scenarios, each run under both swap engines:
//
//   single  -- one tenant cycling over 4 sparse input buffers (3 MiB of
//              working set on a 2 MiB GPU) with a small annotated output
//              buffer: every launch forces an intra-app bounce.
//   multi   -- 4 tenants with 1.5 MiB each (6 MiB total on the same GPU),
//              round-robin launches force inter-app swap churn.
//
//   naive        -- whole-buffer engine (incremental_swap=false): every
//                   eviction writes the full footprint back, every
//                   materialization re-uploads it.
//   incremental  -- dirty-interval engine: clean inputs evict for free,
//                   uploads ship only validated/dirty ranges.
//
// Inputs are half-populated and read-only (kernels annotate their single
// written argument with dev_out), so the incremental engine skips the D2H
// leg entirely and halves the H2D leg. Times are modeled (virtual-clock)
// seconds; the speedup is modeled transfer time the engine no longer
// spends.
//
// Emits machine-readable JSON (default BENCH_swap.json) with per-scenario
// bytes moved and ops/sec for both engines plus the aggregate bytes_ratio
// (incremental/naive, CI gate <= 0.5) and ops_speedup (>= 1.5).
//
// With --paging a third, non-gating row runs each scenario under the
// page-granular engine (64 KiB pages, page-lru, stride prefetch). The
// loop's launches carry no AccessHints, so this measures the paged
// engine's conservative whole-entry fallback -- a sanity row, not the
// engine's best case (bench_paging covers that).
//
// Flags: --out <path>  --iters <n>  --quick  --paging
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/frontend.hpp"
#include "core/runtime.hpp"
#include "sim/machine.hpp"

namespace {

using namespace gpuvm;

constexpr u64 kDevBytes = 2ull << 20;   // 2 MiB GPU: every scenario oversubscribes
constexpr u64 kBufBytes = 768 * 1024;   // input buffer footprint
constexpr u64 kOutBytes = 64 * 1024;    // annotated output buffer
constexpr u64 kPatchBytes = 2 * 1024;   // per-cycle host-side sparse update

sim::SimParams bench_params() {
  sim::SimParams params;
  params.execute_kernel_bodies = false;  // traffic + modeled time only
  return params;
}

void register_kernel(sim::SimMachine& machine) {
  sim::KernelDef touch;
  touch.name = "touch";
  touch.body = [](sim::KernelExecContext&) { return Status::Ok; };
  // ~100us of compute: long enough to look like work, short enough that
  // modeled time stays transfer-dominated (the thing being optimized).
  touch.cost = [](const sim::LaunchConfig&, const std::vector<sim::KernelArg>&) {
    return sim::KernelCost{1e7, 0.0};
  };
  machine.kernels().add(touch);
}

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "bench_swap: %s\n", what);
  std::exit(1);
}

struct RunResult {
  double ops_per_sec = 0.0;
  double elapsed_seconds = 0.0;
  u64 bytes_moved = 0;  // swap_in + swap_out device traffic
  u64 swap_ops = 0;     // evicted entries
  u64 dirty_bytes_saved = 0;
  u64 clean_swap_skips = 0;
};

/// One tenant's churn loop: cycle buffers, patch a sparse range host-side,
/// launch an annotated kernel reading the input and writing `out`.
void tenant_loop(core::Runtime& runtime, vt::Domain& dom, int buffers, int iters, int tenant) {
  core::FrontendApi api(runtime.connect());
  if (!api.connected()) die("handshake failed");
  if (!ok(api.register_kernels({"touch"}))) die("register failed");

  std::vector<VirtualPtr> inputs;
  std::vector<std::byte> half(kBufBytes / 2, std::byte{0x5a});
  for (int b = 0; b < buffers; ++b) {
    auto ptr = api.malloc(kBufBytes);
    if (!ptr) die("malloc failed");
    // Sparse population: only the first half is ever written, so the
    // incremental engine never ships the zero tail.
    if (!ok(api.memcpy_h2d(ptr.value(), half))) die("init copy failed");
    inputs.push_back(ptr.value());
  }
  auto out = api.malloc(kOutBytes);
  if (!out) die("out malloc failed");

  std::vector<std::byte> patch(kPatchBytes, std::byte{0xc3});
  for (int i = 0; i < iters; ++i) {
    const VirtualPtr in = inputs[static_cast<size_t>(i) % inputs.size()];
    const u64 off = (static_cast<u64>(i) * 4096 + static_cast<u64>(tenant) * 512) %
                    (kBufBytes / 2 - kPatchBytes);
    if (!ok(api.memcpy_h2d(in + off, patch))) die("patch failed");
    if (!ok(api.launch("touch", {{64, 1, 1}, {256, 1, 1}},
                       {sim::KernelArg::dev(in), sim::KernelArg::dev_out(out.value())}))) {
      die("launch failed");
    }
    dom.sleep_for(vt::from_micros(20));
  }
}

RunResult run_scenario(bool incremental, bool paged, int tenants, int buffers_per_tenant,
                       int iters) {
  vt::Domain dom;
  vt::AttachGuard guard(dom);
  sim::SimMachine machine(dom, bench_params());
  machine.add_gpu(sim::test_gpu(kDevBytes));
  register_kernel(machine);
  cudart::CudaRt rt(machine, cudart::CudaRtConfig{4 * 1024, 16});
  core::RuntimeConfig config;
  config.incremental_swap = incremental;
  config.paging = paged;
  config.scheduler.vgpus_per_device = tenants > 1 ? tenants : 1;
  core::Runtime runtime(rt, config);

  vt::StopWatch watch(dom);
  {
    dom.hold();
    std::vector<vt::Thread> apps;
    for (int t = 0; t < tenants; ++t) {
      apps.emplace_back(dom, [&runtime, &dom, buffers_per_tenant, iters, t] {
        tenant_loop(runtime, dom, buffers_per_tenant, iters, t);
      });
    }
    dom.unhold();
  }
  runtime.drain();

  const core::MemStats ms = runtime.memory().stats();
  RunResult result;
  result.elapsed_seconds = watch.elapsed_seconds();
  result.ops_per_sec =
      static_cast<double>(tenants) * iters / std::max(result.elapsed_seconds, 1e-12);
  result.bytes_moved = ms.swap_in_bytes + ms.swap_out_bytes;
  result.swap_ops = ms.swapped_entries;
  result.dirty_bytes_saved = ms.dirty_bytes_saved;
  result.clean_swap_skips = ms.clean_swap_skips;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_swap.json";
  int iters = 60;
  bool with_paging = false;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) die("missing flag value");
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--out") == 0) {
      out_path = next();
    } else if (std::strcmp(argv[i], "--iters") == 0) {
      iters = std::atoi(next());
      if (iters <= 0) die("bad --iters");
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      iters = 16;
    } else if (std::strcmp(argv[i], "--paging") == 0) {
      with_paging = true;
    } else {
      die("unknown flag (expected --out/--iters/--quick/--paging)");
    }
  }

  struct Scenario {
    const char* name;
    int tenants;
    int buffers_per_tenant;
  };
  const Scenario scenarios[] = {
      {"single_tenant", 1, 4},  // 3 MiB working set, intra-app bounce
      {"multi_tenant", 4, 2},   // 6 MiB across tenants, inter-app swap
  };

  RunResult naive[2];
  RunResult incr[2];
  RunResult paged[2];
  for (size_t s = 0; s < 2; ++s) {
    naive[s] =
        run_scenario(false, false, scenarios[s].tenants, scenarios[s].buffers_per_tenant, iters);
    incr[s] =
        run_scenario(true, false, scenarios[s].tenants, scenarios[s].buffers_per_tenant, iters);
    if (with_paging) {
      paged[s] =
          run_scenario(true, true, scenarios[s].tenants, scenarios[s].buffers_per_tenant, iters);
    }
    for (const auto* r : {&naive[s], &incr[s], with_paging ? &paged[s] : nullptr}) {
      if (r == nullptr) continue;
      std::printf("%-14s %-12s bytes=%10llu swaps=%6llu ops/sec=%9.1f modeled_s=%.4f\n",
                  scenarios[s].name,
                  r == &naive[s]  ? "naive"
                  : r == &incr[s] ? "incremental"
                                  : "paged",
                  static_cast<unsigned long long>(r->bytes_moved),
                  static_cast<unsigned long long>(r->swap_ops), r->ops_per_sec,
                  r->elapsed_seconds);
    }
  }

  const u64 naive_bytes = naive[0].bytes_moved + naive[1].bytes_moved;
  const u64 incr_bytes = incr[0].bytes_moved + incr[1].bytes_moved;
  const double bytes_ratio =
      static_cast<double>(incr_bytes) / static_cast<double>(std::max<u64>(naive_bytes, 1));
  // Speedup on the heavier multi-tenant scenario; report both per-scenario
  // ops below anyway.
  const double ops_speedup = incr[1].ops_per_sec / std::max(naive[1].ops_per_sec, 1e-12);

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) die("cannot open --out file");
  std::fprintf(f, "{\n  \"bench\": \"swap\",\n  \"iters_per_tenant\": %d,\n", iters);
  std::fprintf(f, "  \"scenarios\": {\n");
  for (size_t s = 0; s < 2; ++s) {
    std::fprintf(f, "    \"%s\": {\n", scenarios[s].name);
    const struct {
      const char* name;
      const RunResult* r;
    } rows[] = {{"naive", &naive[s]},
                {"incremental", &incr[s]},
                {"paged", with_paging ? &paged[s] : nullptr}};
    const size_t row_count = with_paging ? 3 : 2;
    for (size_t m = 0; m < row_count; ++m) {
      const RunResult& r = *rows[m].r;
      std::fprintf(f,
                   "      \"%s\": {\"bytes_moved\": %llu, \"swap_ops\": %llu, "
                   "\"ops_per_sec\": %.1f, \"modeled_seconds\": %.6f, "
                   "\"dirty_bytes_saved\": %llu, \"clean_swap_skips\": %llu}%s\n",
                   rows[m].name, static_cast<unsigned long long>(r.bytes_moved),
                   static_cast<unsigned long long>(r.swap_ops), r.ops_per_sec,
                   r.elapsed_seconds, static_cast<unsigned long long>(r.dirty_bytes_saved),
                   static_cast<unsigned long long>(r.clean_swap_skips),
                   m + 1 == row_count ? "" : ",");
    }
    std::fprintf(f, "    }%s\n", s == 0 ? "," : "");
  }
  std::fprintf(f, "  },\n  \"bytes_ratio\": %.4f,\n  \"ops_speedup\": %.3f\n}\n", bytes_ratio,
               ops_speedup);
  std::fclose(f);
  std::printf("bytes_ratio=%.4f ops_speedup=%.3f -> %s\n", bytes_ratio, ops_speedup,
              out_path.c_str());
  return 0;
}
