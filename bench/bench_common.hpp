// Shared scaffolding for the reproduction benchmarks.
//
// Every bench binary regenerates one table or figure from the paper's
// evaluation (section 5). Reported times are *modeled seconds* (the virtual
// clock), directly comparable to the paper's axes; counters annotate swap /
// migration / offload counts the way the figures do. Kernel bodies are
// skipped (pure performance simulation); correctness is covered by the test
// suite.
//
// GPUVM_BENCH_RUNS overrides the number of randomized repetitions
// (default 5; the paper averages over 10 -- set GPUVM_BENCH_RUNS=10 to
// match at the cost of wall-clock time).
#pragma once

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/direct_api.hpp"
#include "core/frontend.hpp"
#include "core/runtime.hpp"
#include "cudart/cudart.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/machine.hpp"
#include "workloads/batch.hpp"
#include "workloads/workload.hpp"

namespace gpuvm::bench {

/// Records a trace for one environment's lifetime when GPUVM_TRACE_OUT
/// names a file; the Chrome JSON is written there on teardown (each env
/// overwrites the file, so the last configuration's trace survives --
/// run a single benchmark when capturing).
class TraceSession {
 public:
  explicit TraceSession(vt::Domain& dom) {
    const char* path = std::getenv("GPUVM_TRACE_OUT");
    if (path == nullptr || *path == '\0') return;
    path_ = path;
    recorder_ = std::make_unique<obs::TraceRecorder>(dom);
    recorder_->set_process_name(obs::kRuntimePid, "gpuvm runtime");
    obs::set_tracer(recorder_.get());
  }

  ~TraceSession() {
    if (recorder_ == nullptr) return;
    obs::set_tracer(nullptr);
    (void)recorder_->export_chrome_json_file(path_);
  }

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

 private:
  std::string path_;
  std::unique_ptr<obs::TraceRecorder> recorder_;
};

inline int bench_runs() {
  if (const char* env = std::getenv("GPUVM_BENCH_RUNS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 5;
}

inline sim::SimParams bench_params() {
  sim::SimParams params;
  params.mem_scale = 1024;
  params.execute_kernel_bodies = false;
  return params;
}

/// One single-node experiment environment. GPU set chosen per figure.
class NodeEnv {
 public:
  NodeEnv(const std::vector<sim::GpuSpec>& gpus, core::RuntimeConfig config)
      : guard_(dom_), trace_(dom_), machine_(dom_, bench_params()) {
    obs::metrics().reset();  // per-run annotations, not cumulative
    for (const auto& spec : gpus) machine_.add_gpu(spec);
    workloads::register_all_kernels(machine_.kernels());
    rt_ = std::make_unique<cudart::CudaRt>(machine_);
    runtime_ = std::make_unique<core::Runtime>(*rt_, config);
  }

  /// Environment without the gpuvm daemon (bare CUDA runtime baseline).
  explicit NodeEnv(const std::vector<sim::GpuSpec>& gpus)
      : guard_(dom_), trace_(dom_), machine_(dom_, bench_params()) {
    obs::metrics().reset();
    for (const auto& spec : gpus) machine_.add_gpu(spec);
    workloads::register_all_kernels(machine_.kernels());
    rt_ = std::make_unique<cudart::CudaRt>(machine_);
  }

  workloads::BatchOutcome run_direct(const std::vector<workloads::JobSpec>& jobs) {
    // Bare-CUDA jobs use the programmer-defined static mapping: round-robin
    // cudaSetDevice across the node's GPUs (what a user would hand-code).
    auto next_device = std::make_shared<std::atomic<int>>(0);
    const int devices = rt_->get_device_count();
    workloads::BatchRunner runner(
        dom_, machine_.params(), [this, next_device, devices](const workloads::JobSpec&, double) {
          auto api = std::make_unique<core::DirectApi>(*rt_);
          (void)api->set_device(next_device->fetch_add(1) % devices);
          return api;
        });
    return runner.run(jobs);
  }

  workloads::BatchOutcome run_gpuvm(const std::vector<workloads::JobSpec>& jobs) {
    workloads::BatchRunner runner(
        dom_, machine_.params(), [&](const workloads::JobSpec&, double hint) {
          core::ConnectOptions options;
          options.job_cost_hint_seconds = hint;
          return std::make_unique<core::FrontendApi>(runtime_->connect(), options);
        });
    return runner.run(jobs);
  }

  vt::Domain dom_;
  vt::AttachGuard guard_;
  TraceSession trace_;  // before machine_: GPUs register track names on build
  sim::SimMachine machine_;
  std::unique_ptr<cudart::CudaRt> rt_;
  std::unique_ptr<core::Runtime> runtime_;
};

inline std::vector<sim::GpuSpec> paper_node_gpus() {
  // The paper's main node: two Tesla C2050s and one Tesla C1060.
  const auto params = bench_params();
  return {sim::tesla_c2050(params), sim::tesla_c2050(params), sim::tesla_c1060(params)};
}

inline std::vector<sim::GpuSpec> unbalanced_node_gpus() {
  // Figure 9's node: the C1060 replaced by the weaker Quadro 2000.
  const auto params = bench_params();
  return {sim::tesla_c2050(params), sim::tesla_c2050(params), sim::quadro_2000(params)};
}

inline core::RuntimeConfig sharing_config(int vgpus) {
  core::RuntimeConfig config;
  config.scheduler.vgpus_per_device = vgpus;
  return config;
}

/// Turns a JobSpec batch into jobs with no verification (bodies skipped).
inline std::vector<workloads::JobSpec> no_verify(std::vector<workloads::JobSpec> jobs) {
  for (auto& job : jobs) job.verify = false;
  return jobs;
}

/// Mixed BS-L / MM-L batch at a given MM-L percentage (Figures 8 and 11).
inline std::vector<workloads::JobSpec> mixed_long_batch(int count, int mml_percent,
                                                        double mml_cpu_fraction, u64 seed) {
  std::vector<workloads::JobSpec> jobs;
  const int mml_jobs = count * mml_percent / 100;
  for (int i = 0; i < count; ++i) {
    workloads::JobSpec spec;
    spec.workload = i < mml_jobs ? "MM-L" : "BS-L";
    spec.cpu_fraction = spec.workload == "MM-L" ? mml_cpu_fraction : 0.0;
    spec.seed = seed * 100 + static_cast<u64>(i);
    spec.verify = false;
    jobs.push_back(spec);
  }
  return jobs;
}

inline void report_outcome(benchmark::State& state, const workloads::BatchOutcome& outcome) {
  state.SetIterationTime(outcome.total_seconds);
  state.counters["avg_job_s"] = outcome.avg_seconds;
  if (!outcome.all_good()) state.counters["FAILED_JOBS"] = outcome.jobs_failed;
}

/// Annotates the benchmark with the run's registry metrics (the registry
/// was reset when the NodeEnv was built, so values are per-run).
inline void report_registry(benchmark::State& state, const NodeEnv& env) {
  if (env.runtime_ != nullptr) env.runtime_->publish_metrics();
  const obs::MetricsSnapshot snap = obs::metrics().snapshot();
  if (const auto* h = snap.find("sched.queue_wait_seconds")) {
    state.counters["queue_wait_s"] = h->sum;
  }
  state.counters["swaps"] = snap.gauge_value("stats.mm.intra_app_swaps") +
                            snap.gauge_value("stats.mm.inter_app_swaps");
  state.counters["swap_MB"] = snap.gauge_value("stats.mm.swap_bytes") / 1048576.0;
}

}  // namespace gpuvm::bench
