// Live-migration traffic benchmark: pre-copy + stop-and-copy vs naive.
//
// One tenant with a sparse working set (4 buffers, ~30% populated) keeps
// launching kernels that dirty a small output buffer while the job is
// live-migrated to a second daemon over a modeled cluster link. The
// sparse checkpoint image ships only validated swap ranges, the pre-copy
// rounds ship only dirty-interval deltas, and the stop-and-copy ships the
// final delta plus the resume metadata -- so total shipped bytes must come
// in well under the naive whole-footprint image a stop-the-world migration
// would move, and the downtime (stop-and-copy window) must be a small
// fraction of the end-to-end migration.
//
// Emits machine-readable JSON (default BENCH_migration.json) with the
// per-phase byte counts plus the two CI-gated ratios:
//
//   stop_copy_over_image  -- stop-and-copy bytes / round-0 image bytes
//                            (gate <= 0.5: downtime traffic is a fraction
//                            of the image, the point of pre-copying)
//   total_over_naive      -- (pre-copy + stop-and-copy) / naive image
//                            bytes (gate <= 0.5: sparse + incremental
//                            shipping beats the dense footprint)
//
// With --paging the same migration also runs with the page-granular memory
// engine on both daemons and its per-phase byte counts land in a
// non-gating "paged" object -- evidence that checkpoints and pre-copy
// deltas survive page-scoped dirty tracking, not a second gate.
//
// Flags: --out <path>  --iters <n>  --quick  --paging
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/frontend.hpp"
#include "core/runtime.hpp"
#include "sim/machine.hpp"
#include "transport/channel.hpp"

namespace {

using namespace gpuvm;

constexpr u64 kDevBytes = 64ull << 20;  // roomy GPUs: no swap churn noise
constexpr u64 kBufBytes = 8ull << 20;   // working-set buffer footprint
constexpr int kBuffers = 4;
constexpr u64 kPopulated = (kBufBytes * 3) / 10;  // ~30% of each buffer is live
constexpr u64 kOutBytes = 256 * 1024;   // kernel-dirtied output buffer
constexpr u64 kPatchBytes = 64 * 1024;  // per-iteration host-side update

sim::SimParams bench_params() {
  sim::SimParams params;
  params.execute_kernel_bodies = false;  // traffic + modeled time only
  return params;
}

void register_kernel(sim::SimMachine& machine) {
  sim::KernelDef touch;
  touch.name = "touch";
  touch.body = [](sim::KernelExecContext&) { return Status::Ok; };
  touch.cost = [](const sim::LaunchConfig&, const std::vector<sim::KernelArg>&) {
    return sim::KernelCost{1e7, 0.0};  // ~100us of modeled compute
  };
  machine.kernels().add(touch);
}

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "bench_migration: %s\n", what);
  std::exit(1);
}

struct BenchResult {
  core::MigrationReport report;
  double migration_seconds = 0.0;  // modeled end-to-end migrate_context time
  int iters_done = 0;
};

BenchResult run_migration(int iters, bool paged) {
  vt::Domain dom;
  vt::AttachGuard guard(dom);
  sim::SimMachine source_machine(dom, bench_params());
  sim::SimMachine target_machine(dom, bench_params());
  source_machine.add_gpu(sim::test_gpu(kDevBytes));
  target_machine.add_gpu(sim::test_gpu(kDevBytes));
  register_kernel(source_machine);
  register_kernel(target_machine);
  cudart::CudaRt source_rt(source_machine, cudart::CudaRtConfig{4 * 1024, 8});
  cudart::CudaRt target_rt(target_machine, cudart::CudaRtConfig{4 * 1024, 8});
  core::RuntimeConfig config;
  config.paging = paged;
  core::Runtime source(source_rt, config);
  core::Runtime target(target_rt, config);

  std::atomic<bool> ready{false};
  std::atomic<int> done{0};
  BenchResult result;
  {
    vt::Thread app(dom, [&] {
      core::FrontendApi api(source.connect());
      if (!api.connected()) die("handshake failed");
      if (!ok(api.register_kernels({"touch"}))) die("register failed");
      std::vector<VirtualPtr> inputs;
      std::vector<std::byte> live(kPopulated, std::byte{0x5a});
      for (int b = 0; b < kBuffers; ++b) {
        auto ptr = api.malloc(kBufBytes);
        if (!ptr) die("malloc failed");
        // Sparse population: the zero tail never validates, so neither the
        // checkpoint image nor any delta ever ships it.
        if (!ok(api.memcpy_h2d(ptr.value(), live))) die("init copy failed");
        inputs.push_back(ptr.value());
      }
      auto out = api.malloc(kOutBytes);
      if (!out) die("out malloc failed");
      ready.store(true, std::memory_order_release);

      std::vector<std::byte> patch(kPatchBytes, std::byte{0xc3});
      for (int i = 0; i < iters; ++i) {
        const VirtualPtr in = inputs[static_cast<size_t>(i) % inputs.size()];
        const u64 off = (static_cast<u64>(i) * 8192) % (kPopulated - kPatchBytes);
        if (!ok(api.memcpy_h2d(in + off, patch))) die("patch failed");
        if (!ok(api.launch("touch", {{64, 1, 1}, {256, 1, 1}},
                           {sim::KernelArg::dev(in), sim::KernelArg::dev_out(out.value())}))) {
          die("launch failed");
        }
        done.fetch_add(1, std::memory_order_relaxed);
        dom.sleep_for(vt::from_micros(37));
      }
    });

    // Migrate once the working set exists and the job is mid-stream.
    while (!ready.load(std::memory_order_acquire)) dom.sleep_for(vt::from_micros(11));
    while (done.load(std::memory_order_relaxed) < iters / 3) {
      dom.sleep_for(vt::from_micros(11));
    }
    vt::StopWatch watch(dom);
    auto report = source.migrate_context(ContextId{1}, [&] {
      return target.connect_with(transport::ChannelCosts::cluster_link());
    });
    if (!report) die("migration failed");
    result.report = report.value();
    result.migration_seconds = watch.elapsed_seconds();
  }
  source.drain();
  target.drain();
  result.iters_done = done.load(std::memory_order_relaxed);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_migration.json";
  int iters = 90;
  bool with_paging = false;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) die("missing flag value");
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--out") == 0) {
      out_path = next();
    } else if (std::strcmp(argv[i], "--iters") == 0) {
      iters = std::atoi(next());
      if (iters <= 0) die("bad --iters");
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      iters = 30;
    } else if (std::strcmp(argv[i], "--paging") == 0) {
      with_paging = true;
    } else {
      die("unknown flag (expected --out/--iters/--quick/--paging)");
    }
  }

  const BenchResult r = run_migration(iters, false);
  const core::MigrationReport& rep = r.report;
  const u64 total = rep.precopy_bytes + rep.stop_copy_bytes;
  const double stop_copy_over_image =
      static_cast<double>(rep.stop_copy_bytes) /
      static_cast<double>(std::max<u64>(rep.image_bytes, 1));
  const double total_over_naive =
      static_cast<double>(total) / static_cast<double>(std::max<u64>(rep.naive_bytes, 1));

  std::printf("image=%llu precopy=%llu (%d rounds) stop_copy=%llu naive=%llu\n",
              static_cast<unsigned long long>(rep.image_bytes),
              static_cast<unsigned long long>(rep.precopy_bytes), rep.precopy_rounds,
              static_cast<unsigned long long>(rep.stop_copy_bytes),
              static_cast<unsigned long long>(rep.naive_bytes));
  std::printf("stop_copy %.6fs of %.6fs migration (%d kernels ran through it)\n",
              rep.stop_copy_seconds, r.migration_seconds, r.iters_done);

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) die("cannot open --out file");
  std::fprintf(f, "{\n  \"bench\": \"migration\",\n  \"iters\": %d,\n", iters);
  std::fprintf(f, "  \"image_bytes\": %llu,\n  \"precopy_bytes\": %llu,\n",
               static_cast<unsigned long long>(rep.image_bytes),
               static_cast<unsigned long long>(rep.precopy_bytes));
  std::fprintf(f, "  \"precopy_rounds\": %d,\n  \"stop_copy_bytes\": %llu,\n",
               rep.precopy_rounds, static_cast<unsigned long long>(rep.stop_copy_bytes));
  std::fprintf(f, "  \"naive_bytes\": %llu,\n  \"total_shipped_bytes\": %llu,\n",
               static_cast<unsigned long long>(rep.naive_bytes),
               static_cast<unsigned long long>(total));
  std::fprintf(f, "  \"stop_copy_seconds\": %.6f,\n  \"migration_seconds\": %.6f,\n",
               rep.stop_copy_seconds, r.migration_seconds);
  std::fprintf(f, "  \"stop_copy_over_image\": %.4f,\n  \"total_over_naive\": %.4f",
               stop_copy_over_image, total_over_naive);
  if (with_paging) {
    const BenchResult p = run_migration(iters, true);
    const core::MigrationReport& prep = p.report;
    std::printf("paged: image=%llu precopy=%llu stop_copy=%llu migration=%.6fs\n",
                static_cast<unsigned long long>(prep.image_bytes),
                static_cast<unsigned long long>(prep.precopy_bytes),
                static_cast<unsigned long long>(prep.stop_copy_bytes), p.migration_seconds);
    std::fprintf(f,
                 ",\n  \"paged\": {\"image_bytes\": %llu, \"precopy_bytes\": %llu, "
                 "\"precopy_rounds\": %d, \"stop_copy_bytes\": %llu, "
                 "\"stop_copy_seconds\": %.6f, \"migration_seconds\": %.6f}",
                 static_cast<unsigned long long>(prep.image_bytes),
                 static_cast<unsigned long long>(prep.precopy_bytes), prep.precopy_rounds,
                 static_cast<unsigned long long>(prep.stop_copy_bytes), prep.stop_copy_seconds,
                 p.migration_seconds);
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("stop_copy_over_image=%.4f total_over_naive=%.4f -> %s\n", stop_copy_over_image,
              total_over_naive, out_path.c_str());
  return 0;
}
