// Figure 11: two-node cluster with TORQUE -- long-running jobs with
// conflicting memory requirements (BS-L / MM-L at 25/75). Reports Total and
// Avg for 16/32/48 jobs under serialized, sharing, and sharing+offloading.
// The paper: sharing increases throughput up to 50% despite swap overhead;
// offloading accelerates the unbalanced cluster further.
#include "bench_cluster_common.hpp"

namespace gpuvm::bench {
namespace {

void Fig11(benchmark::State& state, ClusterSetting setting) {
  const int jobs = static_cast<int>(state.range(0));
  u64 seed = 60;
  ClusterRun run;
  for (auto _ : state) {
    // 25/75 BS-L/MM-L distribution, MM-L with CPU fraction 1.
    run = run_cluster_batch(setting, mixed_long_batch(jobs, 75, 1.0, seed++));
    state.SetIterationTime(run.batch.total_seconds);
  }
  state.counters["avg_job_s"] = run.batch.avg_seconds;
  state.counters["offloaded"] = static_cast<double>(run.offloaded);
  state.counters["swaps"] = static_cast<double>(run.swaps);
}

}  // namespace
}  // namespace gpuvm::bench

int main(int argc, char** argv) {
  using namespace gpuvm::bench;
  for (ClusterSetting setting :
       {ClusterSetting::Serialized, ClusterSetting::Sharing, ClusterSetting::SharingOffload}) {
    for (int jobs : {16, 32, 48}) {
      benchmark::RegisterBenchmark((std::string("Fig11/") + to_string(setting)).c_str(),
                                   [setting](benchmark::State& state) {
                                     Fig11(state, setting);
                                   })
          ->Args({jobs})
          ->ArgNames({"jobs"})
          ->UseManualTime()
          ->Unit(benchmark::kSecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
