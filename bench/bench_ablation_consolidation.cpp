// Ablation: kernel consolidation (Ravi et al. [6]). The paper argues its
// delayed binding and deferred memory operations make consolidation easy to
// integrate; this bench quantifies the integration: the same short-job
// multi-tenant batch on devices that serialize kernels (CUDA 3.2, 1 slot)
// vs. devices that co-run two kernels with 25% interference.
#include "bench_common.hpp"

namespace gpuvm::bench {
namespace {

void Consolidation(benchmark::State& state, int slots) {
  const int jobs = static_cast<int>(state.range(0));
  u64 seed = 90;
  u64 consolidated = 0;
  for (auto _ : state) {
    auto gpus = paper_node_gpus();
    for (auto& spec : gpus) {
      spec.max_concurrent_kernels = slots;
      spec.consolidation_interference = 0.25;
    }
    NodeEnv env(gpus, sharing_config(4));
    report_outcome(state,
                   env.run_gpuvm(no_verify(workloads::BatchRunner::random_batch(
                       workloads::short_running_names(), jobs, seed++))));
    consolidated = 0;
    for (GpuId id : env.machine_.all_gpus()) {
      consolidated += env.machine_.gpu(id)->stats().consolidated_kernels;
    }
  }
  state.counters["consolidated_kernels"] = static_cast<double>(consolidated);
}

}  // namespace
}  // namespace gpuvm::bench

int main(int argc, char** argv) {
  using namespace gpuvm::bench;
  for (int slots : {1, 2}) {
    for (int jobs : {16, 32}) {
      const std::string label = std::string("Consolidation/") +
                                (slots == 1 ? "serialized_kernels" : "coscheduled_kernels");
      benchmark::RegisterBenchmark(label.c_str(),
                                   [slots](benchmark::State& state) {
                                     Consolidation(state, slots);
                                   })
          ->Args({jobs})
          ->ArgNames({"jobs"})
          ->UseManualTime()
          ->Unit(benchmark::kSecond)
          ->Iterations(3);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
