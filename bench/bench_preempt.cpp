// Preemptive time-quantum scheduling benchmark (nvshare-style rotation).
//
// A memory-oversubscribed bursty-interactive + batch mix on one small GPU:
//
//   batch x3      -- 1.375 MiB working set each (4.1 MiB total on a 2 MiB
//                    device), whole-buffer kernels separated by short CPU
//                    phases. Working sets cannot co-reside, and a sleeping
//                    tenant accepts the cooperative inter-application swap
//                    (section 4.5), so under the non-preemptive FCFS
//                    baseline peers evict each other's working set between
//                    launches: most launches re-materialize the full
//                    buffer, and a tenant that finds no willing victim
//                    backs off, leaving the device idle.
//   interactive   -- one tenant firing short kernels on a 64 KiB buffer
//                    with think-time sleeps between bursts; per-burst
//                    latency is recorded for p50/p99.
//
// The TQ policy serializes device access into exclusive time quanta: the
// bound tenant's working set stays resident for a whole quantum (no
// mid-streak eviction), so swap traffic is paid per *rotation* instead of
// per *launch*. The quantum must be sized to the working-set swap time --
// this simulation mem-scales a 2 GiB card down to 2 MiB, which amplifies
// modeled transfer times by the same factor, so a ~0.5 s base quantum here
// corresponds to nvshare's tens-of-seconds TQ on a real multi-GiB GPU.
// The benchmark runs the mix under FCFS and TQ, sweeps the quantum
// (99.7 ms / 499.3 ms / 1.9973 s -- odd values avoid virtual-clock ties;
// the short quantum shows the anti-thrashing governor escalating until
// rotations stop thrashing), and also reports the deficit fair-share
// policy at the headline quantum.
//
// Times are modeled (virtual-clock) seconds. Emits machine-readable JSON
// (default BENCH_preempt.json) with per-policy makespan, interactive
// latency quantiles, swap traffic, preemption/governor counters, and the
// headline makespan_ratio (TQ/FCFS, CI gate <= 0.9).
//
// Flags: --out <path>  --iters <n>  --quick
// Debug: BENCH_PREEMPT_TRACE=<path> dumps a Chrome trace of the headline
// TQ run.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/frontend.hpp"
#include "obs/trace.hpp"
#include "core/runtime.hpp"
#include "sim/machine.hpp"

namespace {

using namespace gpuvm;

constexpr u64 kDevBytes = 2ull << 20;          // 2 MiB device
constexpr u64 kBatchBytes = 1408 * 1024;       // 1.375 MiB per batch tenant
constexpr u64 kInteractiveBytes = 64 * 1024;   // interactive working set
constexpr int kBatchTenants = 3;               // ~2.1x oversubscription total
constexpr double kThinkTimeUs = 497.0;         // interactive inter-burst sleep
// Headline TQ quantum and governor ceiling, sized to the mem-scaled
// working-set swap time (~0.3 s to materialize one batch buffer).
constexpr double kQuantumSeconds = 0.4993;
constexpr double kMaxQuantumSeconds = 3.9946;

sim::SimParams bench_params() {
  sim::SimParams params;
  params.execute_kernel_bodies = false;  // traffic + modeled time only
  return params;
}

void register_kernels(sim::SimMachine& machine) {
  sim::KernelDef crunch;
  crunch.name = "crunch";  // 1e7 flops: 100us on the 100-GFLOPS test GPU
  crunch.body = [](sim::KernelExecContext&) { return Status::Ok; };
  crunch.cost = [](const sim::LaunchConfig&, const std::vector<sim::KernelArg>&) {
    return sim::KernelCost{1e7, 0.0};
  };
  machine.kernels().add(crunch);

  sim::KernelDef poke;
  poke.name = "poke";  // 1e6 flops: 10us -- the interactive burst
  poke.body = [](sim::KernelExecContext&) { return Status::Ok; };
  poke.cost = [](const sim::LaunchConfig&, const std::vector<sim::KernelArg>&) {
    return sim::KernelCost{1e6, 0.0};
  };
  machine.kernels().add(poke);
}

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "bench_preempt: %s\n", what);
  std::exit(1);
}

struct MixResult {
  double makespan_seconds = 0.0;
  double interactive_p50_ms = 0.0;
  double interactive_p99_ms = 0.0;
  u64 swap_bytes = 0;
  u64 preemptions = 0;
  u64 thrash_trips = 0;
};

/// Whole-buffer batch churn: every launch writes the full working set, so
/// an eviction ships the lot back out.
void batch_tenant(core::Runtime& runtime, vt::Domain& dom, int iters, int tenant) {
  core::FrontendApi api(runtime.connect());
  if (!api.connected()) die("handshake failed");
  if (!ok(api.register_kernels({"crunch"}))) die("register failed");
  auto buf = api.malloc(kBatchBytes);
  if (!buf) die("batch malloc failed");
  std::vector<std::byte> init(kBatchBytes, std::byte{0x6b});
  if (!ok(api.memcpy_h2d(buf.value(), init))) die("init copy failed");
  for (int i = 0; i < iters; ++i) {
    if (!ok(api.launch("crunch", {{64, 1, 1}, {256, 1, 1}},
                       {sim::KernelArg::dev_out(buf.value())}))) {
      die("batch launch failed");
    }
    // A real CPU phase between launches (distinct odd-valued per-tenant
    // periods keep virtual wakeups tie-free): the window in which a
    // non-preemptive peer's inter-application swap can claim the device.
    dom.sleep_for(vt::from_micros(193.0 + 2.0 * static_cast<double>(tenant)));
  }
}

void interactive_tenant(core::Runtime& runtime, vt::Domain& dom, int bursts,
                        std::vector<double>* latencies_ms) {
  core::FrontendApi api(runtime.connect());
  if (!api.connected()) die("handshake failed");
  if (!ok(api.register_kernels({"poke"}))) die("register failed");
  auto buf = api.malloc(kInteractiveBytes);
  if (!buf) die("interactive malloc failed");
  std::vector<std::byte> init(kInteractiveBytes, std::byte{0x11});
  if (!ok(api.memcpy_h2d(buf.value(), init))) die("init copy failed");
  latencies_ms->reserve(static_cast<size_t>(bursts));
  for (int b = 0; b < bursts; ++b) {
    const vt::TimePoint t0 = dom.now();
    if (!ok(api.launch("poke", {{8, 1, 1}, {256, 1, 1}},
                       {sim::KernelArg::dev_out(buf.value())}))) {
      die("interactive launch failed");
    }
    latencies_ms->push_back(vt::to_seconds(dom.now() - t0) * 1e3);
    dom.sleep_for(vt::from_micros(kThinkTimeUs));
  }
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t idx = static_cast<size_t>(q * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(idx, values.size() - 1)];
}

MixResult run_mix(const std::string& policy, double quantum_seconds, int iters) {
  vt::Domain dom;
  vt::AttachGuard guard(dom);
  std::unique_ptr<obs::TraceRecorder> rec;
  std::optional<obs::ScopedTracer> scoped;
  const char* trace_path = std::getenv("BENCH_PREEMPT_TRACE");
  if (trace_path != nullptr && policy == "tq" && quantum_seconds == kQuantumSeconds) {
    rec = std::make_unique<obs::TraceRecorder>(dom);
    scoped.emplace(*rec);
  }
  sim::SimMachine machine(dom, bench_params());
  machine.add_gpu(sim::test_gpu(kDevBytes));
  register_kernels(machine);
  cudart::CudaRt rt(machine, cudart::CudaRtConfig{4 * 1024, 16});
  core::RuntimeConfig config;
  config.scheduler.vgpus_per_device = kBatchTenants + 1;
  config.scheduler.policy = policy;
  if (quantum_seconds > 0.0) {
    config.scheduler.quantum_seconds = quantum_seconds;
    config.scheduler.max_quantum_seconds = kMaxQuantumSeconds;
  }
  core::Runtime runtime(rt, config);

  std::vector<double> latencies_ms;
  vt::StopWatch watch(dom);
  {
    dom.hold();
    std::vector<vt::Thread> apps;
    for (int t = 0; t < kBatchTenants; ++t) {
      apps.emplace_back(dom, [&runtime, &dom, iters, t] {
        batch_tenant(runtime, dom, iters, t);
      });
    }
    const int bursts = std::max(8, iters / 2);
    apps.emplace_back(dom, [&runtime, &dom, bursts, &latencies_ms] {
      interactive_tenant(runtime, dom, bursts, &latencies_ms);
    });
    dom.unhold();
  }
  runtime.drain();
  if (rec != nullptr) {
    rec->export_chrome_json_file(trace_path);
    std::printf("trace written to %s\n", trace_path);
  }

  const core::MemStats ms = runtime.memory().stats();
  const core::SchedulerStats ss = runtime.scheduler().stats();
  MixResult result;
  result.makespan_seconds = watch.elapsed_seconds();
  result.interactive_p50_ms = percentile(latencies_ms, 0.50);
  result.interactive_p99_ms = percentile(latencies_ms, 0.99);
  result.swap_bytes = ms.swap_in_bytes + ms.swap_out_bytes;
  result.preemptions = ss.preemptions;
  result.thrash_trips = ss.thrash_trips;
  return result;
}

void print_row(const char* label, const MixResult& r) {
  std::printf("%-16s makespan=%8.4fs p50=%7.3fms p99=%7.3fms swap=%9llu KiB "
              "preempts=%5llu trips=%llu\n",
              label, r.makespan_seconds, r.interactive_p50_ms, r.interactive_p99_ms,
              static_cast<unsigned long long>(r.swap_bytes / 1024),
              static_cast<unsigned long long>(r.preemptions),
              static_cast<unsigned long long>(r.thrash_trips));
}

void emit_json_entry(FILE* f, const char* indent, const MixResult& r, bool trailing_comma) {
  std::fprintf(f,
               "%s\"makespan_seconds\": %.6f, \"interactive_p50_ms\": %.6f, "
               "\"interactive_p99_ms\": %.6f, \"swap_bytes\": %llu, "
               "\"preemptions\": %llu, \"thrash_trips\": %llu%s\n",
               indent, r.makespan_seconds, r.interactive_p50_ms, r.interactive_p99_ms,
               static_cast<unsigned long long>(r.swap_bytes),
               static_cast<unsigned long long>(r.preemptions),
               static_cast<unsigned long long>(r.thrash_trips), trailing_comma ? "," : "");
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_preempt.json";
  int iters = 1600;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) die("missing flag value");
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--out") == 0) {
      out_path = next();
    } else if (std::strcmp(argv[i], "--iters") == 0) {
      iters = std::atoi(next());
      if (iters <= 0) die("bad --iters");
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      iters = 800;
    } else {
      die("unknown flag (expected --out/--iters/--quick)");
    }
  }

  // Baseline and headline comparison at the swap-time-sized quantum.
  const MixResult fcfs = run_mix("fcfs", 0.0, iters);
  print_row("fcfs", fcfs);
  const MixResult tq = run_mix("tq", kQuantumSeconds, iters);
  print_row("tq", tq);
  const MixResult fair = run_mix("fair", kQuantumSeconds, iters);
  print_row("fair", fair);

  // Quantum sweep: a short quantum expires during re-materialization and
  // thrashes until the governor escalates it (trips > 0); a long quantum
  // amortizes rotation swaps but holds interactive bursts longer -- the
  // tradeoff the thrash governor navigates at runtime.
  const double sweep_us[] = {99700.0, 499300.0, 1997300.0};
  MixResult sweep[3];
  for (size_t q = 0; q < 3; ++q) {
    sweep[q] = run_mix("tq", sweep_us[q] * 1e-6, iters);
    char label[32];
    std::snprintf(label, sizeof(label), "tq@%.0fms", sweep_us[q] / 1000.0);
    print_row(label, sweep[q]);
  }

  const double makespan_ratio = tq.makespan_seconds / std::max(fcfs.makespan_seconds, 1e-12);
  const double p99_ratio =
      tq.interactive_p99_ms / std::max(fcfs.interactive_p99_ms, 1e-12);
  std::printf("makespan ratio (tq/fcfs) %.4f | interactive p99 ratio %.4f\n", makespan_ratio,
              p99_ratio);

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) die("cannot open --out file");
  std::fprintf(f, "{\n  \"bench\": \"preempt\",\n  \"batch_tenants\": %d,\n", kBatchTenants);
  std::fprintf(f, "  \"batch_iters\": %d,\n  \"device_bytes\": %llu,\n", iters,
               static_cast<unsigned long long>(kDevBytes));
  std::fprintf(f, "  \"batch_working_set_bytes\": %llu,\n",
               static_cast<unsigned long long>(kBatchBytes));
  std::fprintf(f, "  \"quantum_us\": %.0f,\n  \"max_quantum_us\": %.0f,\n",
               kQuantumSeconds * 1e6, kMaxQuantumSeconds * 1e6);
  std::fprintf(f, "  \"fcfs\": {\n");
  emit_json_entry(f, "    ", fcfs, false);
  std::fprintf(f, "  },\n  \"tq\": {\n");
  emit_json_entry(f, "    ", tq, false);
  std::fprintf(f, "  },\n  \"fair\": {\n");
  emit_json_entry(f, "    ", fair, false);
  std::fprintf(f, "  },\n  \"quantum_sweep\": [\n");
  for (size_t q = 0; q < 3; ++q) {
    std::fprintf(f, "    {\"quantum_us\": %.0f,\n", sweep_us[q]);
    emit_json_entry(f, "     ", sweep[q], false);
    std::fprintf(f, "    }%s\n", q + 1 < 3 ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"makespan_ratio\": %.6f,\n", makespan_ratio);
  std::fprintf(f, "  \"interactive_p99_ratio\": %.6f\n}\n", p99_ratio);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
