// Paged-vs-entry memory engine benchmark on a sparse-access churn workload.
//
// Two oversubscribed scenarios, each run under both engines:
//
//   single  -- one tenant cycling over 6 fully-populated 512 KiB buffers
//              (3 MiB of working set on a 2 MiB GPU); every launch names
//              one 64 KiB slice of its input via an AccessHint and the
//              slice strides forward one page per revisit.
//   multi   -- 4 tenants with 3 such buffers each (6 MiB total on the same
//              GPU), round-robin launches force inter-app churn on top of
//              the sparse access pattern.
//
//   entry  -- entry-granular engine (paging=false): hints are ignored, so
//             every re-materialization after an eviction ships the whole
//             512 KiB validated footprint back to the device.
//   paged  -- page engine (paging=true, 64 KiB pages, page-lru eviction,
//             stride prefetch): only the hinted page faults in at launch,
//             the strided access trains the prefetcher to ship the next
//             pages asynchronously, and written hints scope the write-back.
//
// The kernels never touch bytes outside their hinted slices, so both
// engines produce identical results; the paged engine just refuses to move
// the cold 7/8 of every buffer. Times are modeled (virtual-clock) seconds
// and include the paged engine's TLB walk charges.
//
// Emits machine-readable JSON (default BENCH_paging.json) with per-scenario
// bytes moved and ops/sec for both engines plus the aggregate bytes_ratio
// (paged/entry launch-path traffic, CI gate <= 0.5) and ops_speedup
// (>= 1.5), and the paged engine's fault/TLB/prefetch counters.
//
// Flags: --out <path>  --iters <n>  --quick
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/frontend.hpp"
#include "core/runtime.hpp"
#include "sim/machine.hpp"

namespace {

using namespace gpuvm;

constexpr u64 kDevBytes = 2ull << 20;   // 2 MiB GPU: every scenario oversubscribes
constexpr u64 kBufBytes = 512 * 1024;   // input buffer footprint (fully populated)
constexpr u64 kPageBytes = 64 * 1024;   // paged engine page size == hinted slice
constexpr u64 kOutBytes = 64 * 1024;    // annotated output buffer (one page)
constexpr u64 kPatchBytes = 2 * 1024;   // per-cycle host-side update inside the slice

sim::SimParams bench_params() {
  sim::SimParams params;
  params.execute_kernel_bodies = false;  // traffic + modeled time only
  return params;
}

void register_kernel(sim::SimMachine& machine) {
  sim::KernelDef touch;
  touch.name = "touch";
  touch.body = [](sim::KernelExecContext&) { return Status::Ok; };
  // ~100us of compute: long enough to look like work, short enough that
  // modeled time stays transfer-dominated (the thing being optimized).
  touch.cost = [](const sim::LaunchConfig&, const std::vector<sim::KernelArg>&) {
    return sim::KernelCost{1e7, 0.0};
  };
  machine.kernels().add(touch);
}

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "bench_paging: %s\n", what);
  std::exit(1);
}

struct RunResult {
  double ops_per_sec = 0.0;
  double elapsed_seconds = 0.0;
  u64 bytes_moved = 0;  // swap_in + swap_out device traffic
  u64 page_faults = 0;
  u64 prefetched_pages = 0;
  u64 page_evictions = 0;
  u64 tlb_hits = 0;
  u64 tlb_misses = 0;
};

/// One tenant's sparse churn loop: cycle buffers, stride the hinted slice
/// one page forward per revisit, patch a few bytes inside it host-side,
/// launch with the input slice hinted read-only and the output hinted
/// written. The entry engine ignores the hints and ships whole footprints.
void tenant_loop(core::Runtime& runtime, vt::Domain& dom, int buffers, int iters, int tenant) {
  core::FrontendApi api(runtime.connect());
  if (!api.connected()) die("handshake failed");
  if (!ok(api.register_kernels({"touch"}))) die("register failed");

  std::vector<VirtualPtr> inputs;
  std::vector<std::byte> full(kBufBytes, std::byte{0x5a});
  for (int b = 0; b < buffers; ++b) {
    auto ptr = api.malloc(kBufBytes);
    if (!ptr) die("malloc failed");
    if (!ok(api.memcpy_h2d(ptr.value(), full))) die("init copy failed");
    inputs.push_back(ptr.value());
  }
  auto out = api.malloc(kOutBytes);
  if (!out) die("out malloc failed");

  const u64 pages_per_buf = kBufBytes / kPageBytes;
  std::vector<std::byte> patch(kPatchBytes, std::byte{0xc3});
  for (int i = 0; i < iters; ++i) {
    const auto idx = static_cast<size_t>(i) % inputs.size();
    const VirtualPtr in = inputs[idx];
    // One page per launch, advancing one page every time this buffer comes
    // around again: a uniform cross-launch stride the prefetcher can learn.
    const u64 slice = (static_cast<u64>(i) / inputs.size() + static_cast<u64>(tenant)) *
                      kPageBytes % (pages_per_buf * kPageBytes);
    if (!ok(api.memcpy_h2d(in + slice, patch))) die("patch failed");
    if (!ok(api.launch("touch", {{64, 1, 1}, {256, 1, 1}},
                       {sim::KernelArg::dev(in), sim::KernelArg::dev_out(out.value()),
                        sim::KernelArg::access_hint(0, slice, kPageBytes),
                        sim::KernelArg::access_hint(1, 0, kOutBytes, /*written=*/true)}))) {
      die("launch failed");
    }
    dom.sleep_for(vt::from_micros(20));
  }
}

RunResult run_scenario(bool paged, int tenants, int buffers_per_tenant, int iters) {
  vt::Domain dom;
  vt::AttachGuard guard(dom);
  sim::SimMachine machine(dom, bench_params());
  machine.add_gpu(sim::test_gpu(kDevBytes));
  register_kernel(machine);
  cudart::CudaRt rt(machine, cudart::CudaRtConfig{4 * 1024, 16});
  core::RuntimeConfig config;
  config.paging = paged;
  config.page_bytes = kPageBytes;
  config.eviction_policy = "page-lru";
  config.prefetch_policy = "stride";
  config.scheduler.vgpus_per_device = tenants > 1 ? tenants : 1;
  core::Runtime runtime(rt, config);

  vt::StopWatch watch(dom);
  {
    dom.hold();
    std::vector<vt::Thread> apps;
    for (int t = 0; t < tenants; ++t) {
      apps.emplace_back(dom, [&runtime, &dom, buffers_per_tenant, iters, t] {
        tenant_loop(runtime, dom, buffers_per_tenant, iters, t);
      });
    }
    dom.unhold();
  }
  runtime.drain();

  const core::MemStats ms = runtime.memory().stats();
  RunResult result;
  result.elapsed_seconds = watch.elapsed_seconds();
  result.ops_per_sec =
      static_cast<double>(tenants) * iters / std::max(result.elapsed_seconds, 1e-12);
  result.bytes_moved = ms.swap_in_bytes + ms.swap_out_bytes;
  result.page_faults = ms.page_faults;
  result.prefetched_pages = ms.prefetched_pages;
  result.page_evictions = ms.page_evictions;
  result.tlb_hits = ms.tlb_hits;
  result.tlb_misses = ms.tlb_misses;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_paging.json";
  int iters = 60;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) die("missing flag value");
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--out") == 0) {
      out_path = next();
    } else if (std::strcmp(argv[i], "--iters") == 0) {
      iters = std::atoi(next());
      if (iters <= 0) die("bad --iters");
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      iters = 16;
    } else {
      die("unknown flag (expected --out/--iters/--quick)");
    }
  }

  struct Scenario {
    const char* name;
    int tenants;
    int buffers_per_tenant;
  };
  const Scenario scenarios[] = {
      {"single_tenant", 1, 6},  // 3 MiB working set, intra-app bounce
      {"multi_tenant", 4, 3},   // 6 MiB across tenants, inter-app churn
  };

  RunResult entry[2];
  RunResult paged[2];
  for (size_t s = 0; s < 2; ++s) {
    entry[s] = run_scenario(false, scenarios[s].tenants, scenarios[s].buffers_per_tenant, iters);
    paged[s] = run_scenario(true, scenarios[s].tenants, scenarios[s].buffers_per_tenant, iters);
    for (const auto* r : {&entry[s], &paged[s]}) {
      std::printf(
          "%-14s %-6s bytes=%10llu faults=%6llu prefetch=%6llu ops/sec=%9.1f modeled_s=%.4f\n",
          scenarios[s].name, r == &entry[s] ? "entry" : "paged",
          static_cast<unsigned long long>(r->bytes_moved),
          static_cast<unsigned long long>(r->page_faults),
          static_cast<unsigned long long>(r->prefetched_pages), r->ops_per_sec,
          r->elapsed_seconds);
    }
  }

  const u64 entry_bytes = entry[0].bytes_moved + entry[1].bytes_moved;
  const u64 paged_bytes = paged[0].bytes_moved + paged[1].bytes_moved;
  const double bytes_ratio =
      static_cast<double>(paged_bytes) / static_cast<double>(std::max<u64>(entry_bytes, 1));
  // Speedup on the heavier multi-tenant scenario; per-scenario ops are in
  // the JSON anyway.
  const double ops_speedup = paged[1].ops_per_sec / std::max(entry[1].ops_per_sec, 1e-12);
  const u64 walks = paged[0].tlb_hits + paged[0].tlb_misses + paged[1].tlb_hits +
                    paged[1].tlb_misses;
  const double tlb_hit_rate =
      static_cast<double>(paged[0].tlb_hits + paged[1].tlb_hits) /
      static_cast<double>(std::max<u64>(walks, 1));

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) die("cannot open --out file");
  std::fprintf(f, "{\n  \"bench\": \"paging\",\n  \"iters_per_tenant\": %d,\n", iters);
  std::fprintf(f, "  \"page_bytes\": %llu,\n", static_cast<unsigned long long>(kPageBytes));
  std::fprintf(f, "  \"scenarios\": {\n");
  for (size_t s = 0; s < 2; ++s) {
    std::fprintf(f, "    \"%s\": {\n", scenarios[s].name);
    const struct {
      const char* name;
      const RunResult* r;
    } rows[] = {{"entry", &entry[s]}, {"paged", &paged[s]}};
    for (size_t m = 0; m < 2; ++m) {
      const RunResult& r = *rows[m].r;
      std::fprintf(f,
                   "      \"%s\": {\"bytes_moved\": %llu, \"ops_per_sec\": %.1f, "
                   "\"modeled_seconds\": %.6f, \"page_faults\": %llu, "
                   "\"prefetched_pages\": %llu, \"page_evictions\": %llu, "
                   "\"tlb_hits\": %llu, \"tlb_misses\": %llu}%s\n",
                   rows[m].name, static_cast<unsigned long long>(r.bytes_moved), r.ops_per_sec,
                   r.elapsed_seconds, static_cast<unsigned long long>(r.page_faults),
                   static_cast<unsigned long long>(r.prefetched_pages),
                   static_cast<unsigned long long>(r.page_evictions),
                   static_cast<unsigned long long>(r.tlb_hits),
                   static_cast<unsigned long long>(r.tlb_misses), m == 0 ? "," : "");
    }
    std::fprintf(f, "    }%s\n", s == 0 ? "," : "");
  }
  std::fprintf(f, "  },\n  \"tlb_hit_rate\": %.4f,\n", tlb_hit_rate);
  std::fprintf(f, "  \"bytes_ratio\": %.4f,\n  \"ops_speedup\": %.3f\n}\n", bytes_ratio,
               ops_speedup);
  std::fclose(f);
  std::printf("bytes_ratio=%.4f ops_speedup=%.3f tlb_hit_rate=%.4f -> %s\n", bytes_ratio,
              ops_speedup, tlb_hit_rate, out_path.c_str());
  return 0;
}
