// Figure 7: conflicting memory needs -- effect of swapping. 36 MM-L jobs
// (each footprint ~1.2 GB; >2 per C2050 conflict) run on the 3-GPU node
// while the fraction of CPU work varies from 0 to 2. Serialized execution
// (1 vGPU) grows linearly with the CPU fraction; GPU sharing (4 vGPUs)
// stays roughly flat because swapping hides the CPU-driven latency. The
// swap counter annotates each bar like the numbers atop the paper's.
#include "bench_common.hpp"

namespace gpuvm::bench {
namespace {

constexpr int kJobs = 36;

std::vector<workloads::JobSpec> mml_batch(double cpu_fraction, u64 seed) {
  std::vector<workloads::JobSpec> jobs;
  for (int i = 0; i < kJobs; ++i) {
    jobs.push_back({"MM-L", cpu_fraction, seed * 100 + static_cast<u64>(i), false});
  }
  return jobs;
}

void Fig7(benchmark::State& state) {
  const double cpu_fraction = static_cast<double>(state.range(0)) / 100.0;
  const int vgpus = static_cast<int>(state.range(1));
  u64 seed = 20;
  for (auto _ : state) {
    NodeEnv env(paper_node_gpus(), sharing_config(vgpus));
    report_outcome(state, env.run_gpuvm(mml_batch(cpu_fraction, seed++)));
    // Swap / queue-wait annotations come from the metrics registry (reset
    // per env), matching the numbers atop the paper's bars.
    report_registry(state, env);
  }
}

}  // namespace
}  // namespace gpuvm::bench

int main(int argc, char** argv) {
  using namespace gpuvm::bench;
  for (int vgpus : {1, 4}) {
    for (int cpu_pct : {0, 50, 100, 150, 200}) {
      const char* label = vgpus == 1 ? "Fig7/serialized_1vGPU" : "Fig7/sharing_4vGPUs";
      benchmark::RegisterBenchmark(label, Fig7)
          ->Args({cpu_pct, vgpus})
          ->ArgNames({"cpu_frac_pct", "vgpus"})
          ->UseManualTime()
          ->Unit(benchmark::kSecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
