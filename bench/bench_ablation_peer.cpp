// Ablation: CUDA 4.0 direct GPU-to-GPU transfers (paper section 4.8:
// "CUDA 4.0 allows a more efficient and direct GPU-to-GPU data transfer.
// Our runtime can take advantage of this mechanism to provide faster
// thread-to-GPU remapping"). Measures the cost of migrating a context's
// working set between devices via the swap round trip (CUDA 3.2 path,
// two PCIe hops through host memory) vs. a direct peer copy (one hop).
#include "bench_common.hpp"

namespace gpuvm::bench {
namespace {

void MigrationPath(benchmark::State& state, bool peer) {
  const u64 megabytes = static_cast<u64>(state.range(0));
  u64 peer_copies = 0;
  u64 swapped = 0;
  for (auto _ : state) {
    vt::Domain dom;
    vt::AttachGuard guard(dom);
    sim::SimParams params{1, false};
    sim::SimMachine machine(dom, params);
    const GpuId g1 = machine.add_gpu(sim::test_gpu(64 << 20));
    const GpuId g2 = machine.add_gpu(sim::test_gpu(64 << 20));
    cudart::CudaRt rt(machine, cudart::CudaRtConfig{4 * 1024, 8});
    core::MemoryManager mm(rt, core::MemoryManager::Config{true, peer});
    const ClientId slot1 = rt.create_client();
    (void)rt.set_device(slot1, 0);
    const ClientId slot2 = rt.create_client();
    (void)rt.set_device(slot2, 1);

    const ContextId ctx{1};
    mm.add_context(ctx);
    auto ptr = mm.on_malloc(ctx, megabytes << 20);
    if (!ptr) continue;
    std::vector<std::byte> data(megabytes << 20, std::byte{1});
    (void)mm.on_copy_h2d(ctx, ptr.value(), data, std::nullopt);
    (void)mm.prepare_launch(ctx, g1, slot1, {sim::KernelArg::dev(ptr.value())});
    // Launch on g1 marked the entry dirty; migrating it to g2 now pays the
    // full data movement either way.
    const vt::StopWatch watch(dom);
    (void)mm.prepare_launch(ctx, g2, slot2, {sim::KernelArg::dev(ptr.value())});
    state.SetIterationTime(watch.elapsed_seconds());
    peer_copies = mm.stats().peer_copies;
    swapped = mm.stats().swapped_entries;
    rt.destroy_client(slot1);
    rt.destroy_client(slot2);
  }
  state.counters["peer_copies"] = static_cast<double>(peer_copies);
  state.counters["swap_entries"] = static_cast<double>(swapped);
}

}  // namespace
}  // namespace gpuvm::bench

int main(int argc, char** argv) {
  using namespace gpuvm::bench;
  for (bool peer : {false, true}) {
    for (int mb : {1, 8, 32}) {
      const std::string label =
          std::string("MigrationPath/") + (peer ? "cuda4_peer_copy" : "swap_round_trip");
      benchmark::RegisterBenchmark(label.c_str(),
                                   [peer](benchmark::State& state) {
                                     MigrationPath(state, peer);
                                   })
          ->Args({mb})
          ->ArgNames({"MiB"})
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond)
          ->Iterations(3);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
