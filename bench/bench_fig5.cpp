// Figure 5: framework overhead. A node with one Tesla C2050 runs 1-8
// concurrent short-running jobs (random draws from Table 2) on the bare
// CUDA runtime and on gpuvm with 1, 2, 4 and 8 vGPUs. The bare runtime is
// the lower bound; gpuvm approaches it as vGPUs (sharing) increase, with a
// worst-case overhead around 10%.
#include "bench_common.hpp"

namespace gpuvm::bench {
namespace {

std::vector<workloads::JobSpec> draw(int jobs, u64 seed) {
  return no_verify(
      workloads::BatchRunner::random_batch(workloads::short_running_names(), jobs, seed));
}

void Fig5Cuda(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  u64 seed = 1;
  for (auto _ : state) {
    NodeEnv env({sim::tesla_c2050(bench_params())});
    report_outcome(state, env.run_direct(draw(jobs, seed++)));
  }
}

void Fig5Gpuvm(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  const int vgpus = static_cast<int>(state.range(1));
  u64 seed = 1;
  for (auto _ : state) {
    NodeEnv env({sim::tesla_c2050(bench_params())}, sharing_config(vgpus));
    report_outcome(state, env.run_gpuvm(draw(jobs, seed++)));
  }
}

}  // namespace
}  // namespace gpuvm::bench

int main(int argc, char** argv) {
  using namespace gpuvm::bench;
  const int runs = bench_runs();
  for (int jobs : {1, 2, 4, 8}) {
    benchmark::RegisterBenchmark("Fig5/CUDA_runtime", Fig5Cuda)
        ->Args({jobs})
        ->ArgNames({"jobs"})
        ->UseManualTime()
        ->Unit(benchmark::kSecond)
        ->Iterations(runs);
  }
  for (int vgpus : {1, 2, 4, 8}) {
    for (int jobs : {1, 2, 4, 8}) {
      benchmark::RegisterBenchmark("Fig5/gpuvm", Fig5Gpuvm)
          ->Args({jobs, vgpus})
          ->ArgNames({"jobs", "vgpus"})
          ->UseManualTime()
          ->Unit(benchmark::kSecond)
          ->Iterations(runs);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
