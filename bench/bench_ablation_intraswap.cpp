// Ablation: intra-application swap (section 4.5's worked example). A single
// application performing chained matrix multiplications whose *aggregate*
// footprint exceeds device memory -- but whose largest kernel working set
// fits -- fails on the bare CUDA runtime with cudaErrorMemoryAllocation and
// completes under gpuvm thanks to intra-application swapping.
#include "bench_common.hpp"

#include <cmath>

#include "core/frontend.hpp"

namespace gpuvm::bench {
namespace {

/// The paper's example: A, B, C each 45% of the device; matmul(A,A,B) then
/// matmul(B,B,C). Any two matrices fit, three do not.
Status run_chain(core::GpuApi& api, u64 matrix_bytes, int* launches) {
  if (const Status s = api.register_kernels({"mm_matmul"}); !ok(s)) return s;
  auto a = api.malloc(matrix_bytes);
  if (!a) return a.status();
  auto b = api.malloc(matrix_bytes);
  if (!b) return b.status();
  auto c = api.malloc(matrix_bytes);
  if (!c) return c.status();
  const u64 n = static_cast<u64>(std::sqrt(static_cast<double>(matrix_bytes / 4)));
  std::vector<float> host(n * n, 1.0f);
  if (const Status s = api.copy_in(a.value(), host); !ok(s)) return s;
  const auto mult = [&](VirtualPtr x, VirtualPtr y, VirtualPtr out) {
    const Status s = api.launch(
        "mm_matmul", sim::LaunchConfig{{625, 625, 1}, {256, 1, 1}},
        {sim::KernelArg::dev(x), sim::KernelArg::dev(y), sim::KernelArg::dev(out),
         sim::KernelArg::i64v(static_cast<i64>(n)), sim::KernelArg::i64v(10000)});
    if (ok(s)) ++*launches;
    return s;
  };
  if (const Status s = mult(a.value(), a.value(), b.value()); !ok(s)) return s;
  if (const Status s = mult(b.value(), b.value(), c.value()); !ok(s)) return s;
  std::vector<float> out(n * n);
  if (const Status s = api.copy_out(out, b.value()); !ok(s)) return s;
  if (const Status s = api.copy_out(out, c.value()); !ok(s)) return s;
  return Status::Ok;
}

void IntraSwap(benchmark::State& state, bool use_gpuvm) {
  int launches = 0;
  Status status = Status::Ok;
  u64 swaps = 0;
  for (auto _ : state) {
    NodeEnv env({sim::tesla_c2050(bench_params())}, sharing_config(1));
    // 45% of a 3 MiB-scaled device per matrix.
    const u64 matrix_bytes =
        env.machine_.gpu(env.machine_.all_gpus()[0])->capacity_bytes() * 45 / 100;
    launches = 0;
    const vt::StopWatch watch(env.dom_);
    if (use_gpuvm) {
      core::FrontendApi api(env.runtime_->connect());
      status = run_chain(api, matrix_bytes, &launches);
      swaps = env.runtime_->memory().stats().intra_app_swaps;
    } else {
      core::DirectApi api(*env.rt_);
      status = run_chain(api, matrix_bytes, &launches);
    }
    state.SetIterationTime(std::max(watch.elapsed_seconds(), 1e-9));
  }
  state.counters["completed"] = ok(status) ? 1 : 0;
  state.counters["error_code"] = static_cast<double>(status);
  state.counters["launches"] = launches;
  state.counters["intra_swaps"] = static_cast<double>(swaps);
}

}  // namespace
}  // namespace gpuvm::bench

int main(int argc, char** argv) {
  using namespace gpuvm::bench;
  benchmark::RegisterBenchmark("IntraSwap/CUDA_runtime_fails",
                               [](benchmark::State& state) { IntraSwap(state, false); })
      ->UseManualTime()
      ->Unit(benchmark::kSecond)
      ->Iterations(1);
  benchmark::RegisterBenchmark("IntraSwap/gpuvm_completes",
                               [](benchmark::State& state) { IntraSwap(state, true); })
      ->UseManualTime()
      ->Unit(benchmark::kSecond)
      ->Iterations(1);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
