// Figure 10: two-node cluster with TORQUE -- short-running jobs, no
// conflicting memory requirements. Reports Total and Avg execution time for
// 16/32/48 jobs under: serialized execution (1 vGPU/device), GPU sharing
// (4 vGPUs/device), and sharing + inter-node offloading. The paper: sharing
// gains up to 28% over serialized; offloading adds up to another 18%.
#include "bench_cluster_common.hpp"

namespace gpuvm::bench {
namespace {

void Fig10(benchmark::State& state, ClusterSetting setting) {
  const int jobs = static_cast<int>(state.range(0));
  u64 seed = 50;
  ClusterRun run;
  for (auto _ : state) {
    const auto batch = no_verify(
        workloads::BatchRunner::random_batch(workloads::short_running_names(), jobs, seed++));
    run = run_cluster_batch(setting, batch);
    state.SetIterationTime(run.batch.total_seconds);
  }
  state.counters["avg_job_s"] = run.batch.avg_seconds;
  state.counters["offloaded"] = static_cast<double>(run.offloaded);
}

}  // namespace
}  // namespace gpuvm::bench

int main(int argc, char** argv) {
  using namespace gpuvm::bench;
  const int runs = bench_runs();
  for (ClusterSetting setting :
       {ClusterSetting::Serialized, ClusterSetting::Sharing, ClusterSetting::SharingOffload}) {
    for (int jobs : {16, 32, 48}) {
      benchmark::RegisterBenchmark((std::string("Fig10/") + to_string(setting)).c_str(),
                                   [setting](benchmark::State& state) {
                                     Fig10(state, setting);
                                   })
          ->Args({jobs})
          ->ArgNames({"jobs"})
          ->UseManualTime()
          ->Unit(benchmark::kSecond)
          ->Iterations(runs);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
