// Ablation: scheduling policies (section 2, "Configurable Scheduling").
// A mixed batch of short and long jobs contends for limited vGPUs; the
// dispatcher runs under FCFS, shortest-job-first (using the frontend's
// profiling hints) and credit-based fair sharing. SJF should improve the
// *average* job time (short jobs overtake long ones) while total time stays
// comparable.
#include "bench_common.hpp"

namespace gpuvm::bench {
namespace {

std::vector<workloads::JobSpec> mixed_batch(u64 seed) {
  std::vector<workloads::JobSpec> jobs;
  // 12 short jobs + 6 long jobs, interleaved so FCFS arrival order is bad
  // for the short ones.
  const auto shorts = workloads::short_running_names();
  Rng rng(seed);
  for (int i = 0; i < 18; ++i) {
    workloads::JobSpec spec;
    if (i % 3 == 0) {
      spec.workload = "BS-L";
    } else {
      spec.workload = shorts[rng.below(shorts.size())];
    }
    spec.seed = seed * 100 + static_cast<u64>(i);
    spec.verify = false;
    jobs.push_back(spec);
  }
  return jobs;
}

void AblationSched(benchmark::State& state, const char* policy) {
  u64 seed = 80;
  for (auto _ : state) {
    core::RuntimeConfig config = sharing_config(2);
    config.scheduler.policy = policy;
    NodeEnv env({sim::tesla_c2050(bench_params())}, config);
    report_outcome(state, env.run_gpuvm(mixed_batch(seed++)));
  }
}

}  // namespace
}  // namespace gpuvm::bench

int main(int argc, char** argv) {
  using namespace gpuvm::bench;
  const int runs = bench_runs();
  const std::pair<const char*, const char*> policies[] = {
      {"AblationSched/fcfs", "fcfs"},
      {"AblationSched/sjf", "sjf"},
      {"AblationSched/credit", "credit"},
  };
  for (const auto& [label, policy] : policies) {
    benchmark::RegisterBenchmark(label,
                                 [policy](benchmark::State& state) {
                                   AblationSched(state, policy);
                                 })
        ->UseManualTime()
        ->Unit(benchmark::kSecond)
        ->Iterations(runs);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
