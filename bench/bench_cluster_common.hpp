// Shared scaffolding for the cluster-level benches (Figures 10 and 11).
//
// The paper's cluster: a head node plus two compute nodes -- one with
// 2x C2050 + 1x C1060, one with a single C1060. TORQUE is configured
// oblivious of the GPUs ("we hid from TORQUE the presence of GPUs") so it
// divides the jobs equally between the nodes; the gpuvm daemons then apply
// the per-setting policy: serialized (1 vGPU), GPU sharing (4 vGPUs), or
// sharing plus inter-node offloading.
#pragma once

#include "bench_common.hpp"
#include "cluster/cluster.hpp"
#include "cluster/torque.hpp"

namespace gpuvm::bench {

enum class ClusterSetting { Serialized, Sharing, SharingOffload };

inline const char* to_string(ClusterSetting s) {
  switch (s) {
    case ClusterSetting::Serialized: return "serialized";
    case ClusterSetting::Sharing: return "sharing_4vGPUs";
    case ClusterSetting::SharingOffload: return "sharing_offload";
  }
  return "?";
}

struct ClusterRun {
  cluster::BatchResult batch;
  u64 offloaded = 0;
  u64 swaps = 0;
};

/// Builds the two-compute-node cluster, submits `jobs` through oblivious
/// TORQUE, runs to completion.
inline ClusterRun run_cluster_batch(ClusterSetting setting,
                                    const std::vector<workloads::JobSpec>& jobs) {
  vt::Domain dom;
  vt::AttachGuard guard(dom);
  const auto params = bench_params();

  core::RuntimeConfig config;
  config.scheduler.vgpus_per_device = setting == ClusterSetting::Serialized ? 1 : 4;
  if (setting == ClusterSetting::SharingOffload) {
    // Shed connections queued beyond roughly one batch per vGPU.
    config.offload_threshold = 2;
  }

  cluster::Cluster cl(dom, params,
                      {{"node-a",
                        {sim::tesla_c2050(params), sim::tesla_c2050(params),
                         sim::tesla_c1060(params)}},
                       {"node-b", {sim::tesla_c1060(params)}}},
                      config);
  for (auto& node : {&cl.node(0), &cl.node(1)}) {
    workloads::register_all_kernels(node->machine().kernels());
  }
  if (setting == ClusterSetting::SharingOffload) cl.enable_offloading();

  cluster::TorqueScheduler torque(dom, cl.node_pointers(),
                                  cluster::TorqueScheduler::Mode::Oblivious);
  for (const auto& spec : jobs) {
    cluster::Job job;
    job.name = spec.workload;
    const workloads::Workload* app = workloads::find_workload(spec.workload);
    job.cost_hint_seconds = app->expected_gpu_seconds();
    job.body = [&dom, params, spec, app](core::GpuApi& api) {
      workloads::AppContext ctx;
      ctx.dom = &dom;
      ctx.api = &api;
      ctx.params = params;
      ctx.seed = spec.seed;
      ctx.cpu_fraction = spec.cpu_fraction;
      ctx.verify = spec.verify;
      (void)app->run(ctx);
    };
    torque.submit(std::move(job));
  }

  ClusterRun run;
  run.batch = torque.run_to_completion();
  run.offloaded = cl.total_offloaded();
  for (size_t n = 0; n < cl.size(); ++n) {
    const auto mem = cl.node(n).runtime().memory().stats();
    run.swaps += mem.inter_app_swaps + mem.intra_app_swaps;
  }
  return run;
}

}  // namespace gpuvm::bench
