// Simulator scale benchmark: thread-per-actor vs discrete-event task mode.
//
// Drives the same synthetic multi-tenant job stream (workloads/loadgen:
// Poisson or diurnal arrivals, bounded-Pareto footprints, exponential
// service) through the same cluster model -- N nodes x G GPUs, least-loaded
// dispatch, per-node FIFO -- under two actor regimes:
//
//   threaded  -- one vt::Thread per tenant submitter plus one vt::Thread per
//                GPU worker: the faithful-but-expensive model every
//                experiment used before the discrete-event fast path. Each
//                virtual-clock advance costs OS context switches.
//   task      -- every tenant and every completion is a vt::Task callback on
//                one TaskRunner pump: events cost calendar-queue operations,
//                no thread handoffs.
//
// Both drivers consume the identical generated trace and must agree on jobs
// completed and virtual makespan -- the fast path changes wall-clock cost,
// never modeled outcomes. The headline metric is events/sec of host time
// (events = arrivals + job starts + completions); the CI gate requires the
// task driver to beat the threaded driver by >= 10x on the quick mix.
//
// The full sweep (default) additionally scales task mode to 1000+ GPUs and
// >= 1M job events per configuration; --quick runs only the two-driver
// comparison mix. Emits machine-readable JSON (default BENCH_scale.json).
//
// Flags: --out <path>  --quick
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/task.hpp"
#include "common/vt.hpp"
#include "workloads/loadgen.hpp"

namespace {

using namespace gpuvm;

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "bench_scale: %s\n", what);
  std::exit(1);
}

struct Mix {
  const char* name;
  int nodes = 0;
  int gpus_per_node = 0;
  int tenants = 0;
  double horizon_seconds = 0.0;
  double arrivals_per_second = 0.0;  // per tenant
  double service_mean_seconds = 0.0;
  double diurnal_amplitude = 0.0;
  u64 seed = 0;
};

workloads::LoadGenConfig loadgen_config(const Mix& mix) {
  workloads::LoadGenConfig config;
  config.seed = mix.seed;
  config.tenants = mix.tenants;
  config.horizon_seconds = mix.horizon_seconds;
  config.arrivals_per_second = mix.arrivals_per_second;
  config.service_mean_seconds = mix.service_mean_seconds;
  config.diurnal_amplitude = mix.diurnal_amplitude;
  config.diurnal_period_seconds = mix.horizon_seconds / 2.0;  // two "days"
  return config;
}

/// Cluster model shared by both drivers: least-loaded dispatch across
/// nodes, per-node FIFO, one job occupies one GPU for its service time.
struct Model {
  struct Node {
    int running = 0;
    std::deque<double> fifo;  // service times awaiting a free GPU
  };

  explicit Model(const Mix& mix)
      : nodes(static_cast<size_t>(mix.nodes)), gpus_per_node(mix.gpus_per_node) {}

  std::vector<Node> nodes;
  int gpus_per_node;
  u64 events = 0;  // arrivals + starts + completions
  u64 completed = 0;
  double makespan_seconds = 0.0;

  size_t pick_node() const {
    size_t best = 0;
    size_t best_load = static_cast<size_t>(nodes[0].running) + nodes[0].fifo.size();
    for (size_t n = 1; n < nodes.size(); ++n) {
      const size_t load = static_cast<size_t>(nodes[n].running) + nodes[n].fifo.size();
      if (load < best_load) {
        best = n;
        best_load = load;
      }
    }
    return best;
  }
};

struct DriveResult {
  u64 jobs = 0;
  u64 events = 0;
  double makespan_seconds = 0.0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
  u64 clock_advances = 0;
  u64 sleepers_peak = 0;
};

DriveResult finish(const Model& model, u64 jobs, double wall_seconds, const vt::Domain& dom) {
  DriveResult r;
  r.jobs = jobs;
  r.events = model.events;
  r.makespan_seconds = model.makespan_seconds;
  r.wall_seconds = wall_seconds;
  r.events_per_sec = static_cast<double>(model.events) / std::max(wall_seconds, 1e-12);
  const vt::Domain::ClockStats cs = dom.clock_stats();
  r.clock_advances = cs.advances;
  r.sleepers_peak = cs.sleepers_peak;
  return r;
}

// ---- threaded driver: one OS thread per tenant + one per GPU ---------------

DriveResult run_threaded(const Mix& mix,
                         const std::vector<std::vector<workloads::GeneratedJob>>& per_tenant,
                         u64 total_jobs) {
  vt::Domain dom;
  Model model(mix);
  std::mutex mu;
  std::vector<std::unique_ptr<vt::ConditionVariable>> node_cv;
  for (int n = 0; n < mix.nodes; ++n) {
    node_cv.push_back(std::make_unique<vt::ConditionVariable>(dom));
  }
  bool shutdown = false;

  const auto worker = [&](size_t n) {
    std::unique_lock lk(mu);
    for (;;) {
      node_cv[n]->wait(lk, [&] { return shutdown || !model.nodes[n].fifo.empty(); });
      if (model.nodes[n].fifo.empty()) break;  // shutdown and drained
      const double service = model.nodes[n].fifo.front();
      model.nodes[n].fifo.pop_front();
      ++model.nodes[n].running;
      ++model.events;  // job start
      lk.unlock();
      dom.sleep_for(vt::from_seconds(service));
      lk.lock();
      --model.nodes[n].running;
      ++model.events;  // completion
      ++model.completed;
      model.makespan_seconds = std::max(model.makespan_seconds, vt::to_seconds(dom.now()));
      if (model.completed == total_jobs) {
        shutdown = true;
        for (auto& cv : node_cv) cv->notify_all();
      }
    }
  };

  const auto submitter = [&](int tenant) {
    for (const workloads::GeneratedJob& job : per_tenant[static_cast<size_t>(tenant)]) {
      dom.sleep_until(vt::from_seconds(job.arrival_seconds));
      std::unique_lock lk(mu);
      ++model.events;  // arrival
      const size_t n = model.pick_node();
      model.nodes[n].fifo.push_back(job.service_seconds);
      node_cv[n]->notify_one();
    }
  };

  const auto wall_start = std::chrono::steady_clock::now();
  {
    vt::AttachGuard attach(dom);
    std::vector<vt::Thread> threads;
    threads.reserve(static_cast<size_t>(mix.nodes) * static_cast<size_t>(mix.gpus_per_node) +
                    static_cast<size_t>(mix.tenants));
    dom.hold();
    for (int n = 0; n < mix.nodes; ++n) {
      for (int g = 0; g < mix.gpus_per_node; ++g) {
        threads.emplace_back(dom, [&, n] { worker(static_cast<size_t>(n)); });
      }
    }
    for (int t = 0; t < mix.tenants; ++t) {
      threads.emplace_back(dom, [&, t] { submitter(t); });
    }
    dom.unhold();
  }  // joins every thread
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  if (model.completed != total_jobs) die("threaded driver lost jobs");
  return finish(model, total_jobs, wall, dom);
}

// ---- task driver: every actor is a callback on one TaskRunner pump ---------

struct TaskDriver {
  const std::vector<std::vector<workloads::GeneratedJob>>* per_tenant;
  Model* model;

  void dispatch(vt::Task& t, size_t n) {
    Model::Node& node = model->nodes[n];
    while (node.running < model->gpus_per_node && !node.fifo.empty()) {
      const double service = node.fifo.front();
      node.fifo.pop_front();
      ++node.running;
      ++model->events;  // job start
      t.defer(vt::from_seconds(service), [this, n](vt::Task& t2) { complete(t2, n); });
    }
  }

  void complete(vt::Task& t, size_t n) {
    --model->nodes[n].running;
    ++model->events;  // completion
    ++model->completed;
    model->makespan_seconds = std::max(model->makespan_seconds, vt::to_seconds(t.now()));
    dispatch(t, n);
  }

  void arrival(vt::Task& t, int tenant, size_t k) {
    const auto& jobs = (*per_tenant)[static_cast<size_t>(tenant)];
    ++model->events;  // arrival
    const size_t n = model->pick_node();
    model->nodes[n].fifo.push_back(jobs[k].service_seconds);
    dispatch(t, n);
    if (k + 1 < jobs.size()) {
      t.at(vt::from_seconds(jobs[k + 1].arrival_seconds),
           [this, tenant, k](vt::Task& t2) { arrival(t2, tenant, k + 1); });
    }
  }
};

DriveResult run_task(const Mix& mix,
                     const std::vector<std::vector<workloads::GeneratedJob>>& per_tenant,
                     u64 total_jobs) {
  vt::Domain dom;
  Model model(mix);
  TaskDriver driver{&per_tenant, &model};

  const auto wall_start = std::chrono::steady_clock::now();
  {
    vt::TaskRunner runner(dom);
    for (int tenant = 0; tenant < mix.tenants; ++tenant) {
      if (per_tenant[static_cast<size_t>(tenant)].empty()) continue;
      // Each tenant is a self-re-arming actor chain: the seed step schedules
      // the first arrival, every arrival schedules the next.
      runner.spawn([&driver, tenant](vt::Task& t) {
        const double first =
            (*driver.per_tenant)[static_cast<size_t>(tenant)][0].arrival_seconds;
        t.at(vt::from_seconds(first),
             [&driver, tenant](vt::Task& t2) { driver.arrival(t2, tenant, 0); });
      });
    }
    runner.drain();
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  if (model.completed != total_jobs) die("task driver lost jobs");
  return finish(model, total_jobs, wall, dom);
}

std::vector<std::vector<workloads::GeneratedJob>> per_tenant_trace(const Mix& mix,
                                                                  u64* total_jobs) {
  const workloads::LoadGenConfig config = loadgen_config(mix);
  std::vector<std::vector<workloads::GeneratedJob>> per_tenant;
  per_tenant.reserve(static_cast<size_t>(mix.tenants));
  u64 total = 0;
  for (int tenant = 0; tenant < mix.tenants; ++tenant) {
    per_tenant.push_back(workloads::generate_tenant_jobs(config, tenant));
    total += per_tenant.back().size();
  }
  *total_jobs = total;
  return per_tenant;
}

void print_result(const char* mix, const char* driver, const DriveResult& r) {
  std::printf(
      "%-8s %-9s jobs=%-8llu events=%-8llu makespan=%8.4fs wall=%8.3fs events/sec=%12.0f "
      "(advances=%llu peak_sleepers=%llu)\n",
      mix, driver, static_cast<unsigned long long>(r.jobs),
      static_cast<unsigned long long>(r.events), r.makespan_seconds, r.wall_seconds,
      r.events_per_sec, static_cast<unsigned long long>(r.clock_advances),
      static_cast<unsigned long long>(r.sleepers_peak));
}

void emit_result_json(FILE* f, const char* key, const DriveResult& r, const char* trailer) {
  std::fprintf(f,
               "    \"%s\": {\"jobs\": %llu, \"events\": %llu, \"makespan_seconds\": %.9f, "
               "\"wall_seconds\": %.4f, \"events_per_sec\": %.0f, \"clock_advances\": %llu, "
               "\"sleepers_peak\": %llu}%s\n",
               key, static_cast<unsigned long long>(r.jobs),
               static_cast<unsigned long long>(r.events), r.makespan_seconds, r.wall_seconds,
               r.events_per_sec, static_cast<unsigned long long>(r.clock_advances),
               static_cast<unsigned long long>(r.sleepers_peak), trailer);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_scale.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) die("missing flag value");
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--out") == 0) out_path = next();
    else if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    else die("unknown flag (expected --out/--quick)");
  }

  // Quick mix: small enough that the thread-per-actor baseline is feasible
  // (320 OS threads, ~115k events); both drivers run and must agree.
  const Mix quick_mix{"quick", /*nodes=*/16, /*gpus_per_node=*/4, /*tenants=*/256,
                      /*horizon=*/3.0, /*rate=*/50.0, /*service=*/0.003,
                      /*amplitude=*/0.0, /*seed=*/42};
  // Full sweep: task mode only -- thread-per-actor at these sizes is the
  // problem this PR deletes. s1024 and s1024d are the headline rows: 1024
  // GPUs, >= 1M job events each, s1024d with diurnal arrival modulation.
  const Mix sweep[] = {
      {"s256", 32, 8, 256, 5.0, 40.0, 0.020, 0.0, 1001},
      {"s1024", 64, 16, 1024, 10.0, 40.0, 0.015, 0.0, 1002},
      {"s1024d", 128, 8, 2048, 6.0, 35.0, 0.012, 0.6, 1003},
  };

  u64 quick_jobs = 0;
  const auto quick_trace = per_tenant_trace(quick_mix, &quick_jobs);
  std::printf("quick mix: %d nodes x %d GPUs, %d tenants, %llu jobs\n", quick_mix.nodes,
              quick_mix.gpus_per_node, quick_mix.tenants,
              static_cast<unsigned long long>(quick_jobs));

  const DriveResult threaded = run_threaded(quick_mix, quick_trace, quick_jobs);
  print_result("quick", "threaded", threaded);
  const DriveResult task = run_task(quick_mix, quick_trace, quick_jobs);
  print_result("quick", "task", task);

  // The fast path must not change modeled outcomes.
  const bool agree = threaded.jobs == task.jobs && threaded.events == task.events &&
                     std::fabs(threaded.makespan_seconds - task.makespan_seconds) < 1e-9;
  if (!agree) {
    std::fprintf(stderr,
                 "bench_scale: driver disagreement (threaded %llu ev %.9fs vs task %llu ev "
                 "%.9fs)\n",
                 static_cast<unsigned long long>(threaded.events), threaded.makespan_seconds,
                 static_cast<unsigned long long>(task.events), task.makespan_seconds);
  }
  const double speedup = task.events_per_sec / std::max(threaded.events_per_sec, 1e-12);
  std::printf("quick speedup (task/threaded events/sec): %.1fx\n", speedup);

  std::vector<Mix> sweep_mixes;
  std::vector<DriveResult> sweep_results;
  double headline = task.events_per_sec;
  if (!quick) {
    for (const Mix& mix : sweep) {
      u64 jobs = 0;
      const auto trace = per_tenant_trace(mix, &jobs);
      std::printf("sweep %s: %d nodes x %d GPUs (%d total), %d tenants, %llu jobs\n", mix.name,
                  mix.nodes, mix.gpus_per_node, mix.nodes * mix.gpus_per_node, mix.tenants,
                  static_cast<unsigned long long>(jobs));
      const DriveResult r = run_task(mix, trace, jobs);
      print_result(mix.name, "task", r);
      sweep_mixes.push_back(mix);
      sweep_results.push_back(r);
      headline = std::max(headline, r.events_per_sec);
    }
  }

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) die("cannot open --out file");
  std::fprintf(f, "{\n  \"bench\": \"scale\",\n  \"quick\": {\n");
  std::fprintf(f, "    \"nodes\": %d, \"gpus_total\": %d, \"tenants\": %d,\n", quick_mix.nodes,
               quick_mix.nodes * quick_mix.gpus_per_node, quick_mix.tenants);
  emit_result_json(f, "threaded", threaded, ",");
  emit_result_json(f, "task", task, ",");
  std::fprintf(f, "    \"agreement\": %s,\n    \"speedup\": %.2f\n  },\n",
               agree ? "true" : "false", speedup);
  std::fprintf(f, "  \"sweep\": [\n");
  for (size_t i = 0; i < sweep_results.size(); ++i) {
    const Mix& mix = sweep_mixes[i];
    const DriveResult& r = sweep_results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"nodes\": %d, \"gpus_total\": %d, \"tenants\": %d, "
                 "\"diurnal_amplitude\": %.2f, \"jobs\": %llu, \"events\": %llu, "
                 "\"makespan_seconds\": %.6f, \"wall_seconds\": %.4f, "
                 "\"events_per_sec\": %.0f}%s\n",
                 mix.name, mix.nodes, mix.nodes * mix.gpus_per_node, mix.tenants,
                 mix.diurnal_amplitude, static_cast<unsigned long long>(r.jobs),
                 static_cast<unsigned long long>(r.events), r.makespan_seconds, r.wall_seconds,
                 r.events_per_sec, i + 1 < sweep_results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"headline_events_per_sec\": %.0f\n}\n", headline);
  std::fclose(f);
  std::printf("headline events/sec=%.0f -> %s\n", headline, out_path.c_str());
  return agree ? 0 : 1;
}
