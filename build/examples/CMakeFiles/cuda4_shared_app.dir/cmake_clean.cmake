file(REMOVE_RECURSE
  "CMakeFiles/cuda4_shared_app.dir/cuda4_shared_app.cpp.o"
  "CMakeFiles/cuda4_shared_app.dir/cuda4_shared_app.cpp.o.d"
  "cuda4_shared_app"
  "cuda4_shared_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cuda4_shared_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
