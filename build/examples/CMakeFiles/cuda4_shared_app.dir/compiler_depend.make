# Empty compiler generated dependencies file for cuda4_shared_app.
# This may be replaced when dependencies are built.
