
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/multi_tenant_node.cpp" "examples/CMakeFiles/multi_tenant_node.dir/multi_tenant_node.cpp.o" "gcc" "examples/CMakeFiles/multi_tenant_node.dir/multi_tenant_node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/gpuvm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/gpuvm_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gpuvm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cudart/CMakeFiles/gpuvm_cudart.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gpuvm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/gpuvm_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gpuvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
