file(REMOVE_RECURSE
  "CMakeFiles/multi_tenant_node.dir/multi_tenant_node.cpp.o"
  "CMakeFiles/multi_tenant_node.dir/multi_tenant_node.cpp.o.d"
  "multi_tenant_node"
  "multi_tenant_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tenant_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
