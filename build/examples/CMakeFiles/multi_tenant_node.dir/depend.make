# Empty dependencies file for multi_tenant_node.
# This may be replaced when dependencies are built.
