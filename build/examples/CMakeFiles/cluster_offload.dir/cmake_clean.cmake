file(REMOVE_RECURSE
  "CMakeFiles/cluster_offload.dir/cluster_offload.cpp.o"
  "CMakeFiles/cluster_offload.dir/cluster_offload.cpp.o.d"
  "cluster_offload"
  "cluster_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
