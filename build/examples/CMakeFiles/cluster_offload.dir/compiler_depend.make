# Empty compiler generated dependencies file for cluster_offload.
# This may be replaced when dependencies are built.
