file(REMOVE_RECURSE
  "CMakeFiles/fault_tolerance.dir/fault_tolerance.cpp.o"
  "CMakeFiles/fault_tolerance.dir/fault_tolerance.cpp.o.d"
  "fault_tolerance"
  "fault_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
