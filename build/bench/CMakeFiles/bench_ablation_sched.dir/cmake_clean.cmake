file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sched.dir/bench_ablation_sched.cpp.o"
  "CMakeFiles/bench_ablation_sched.dir/bench_ablation_sched.cpp.o.d"
  "bench_ablation_sched"
  "bench_ablation_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
