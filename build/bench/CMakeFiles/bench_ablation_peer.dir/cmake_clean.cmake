file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_peer.dir/bench_ablation_peer.cpp.o"
  "CMakeFiles/bench_ablation_peer.dir/bench_ablation_peer.cpp.o.d"
  "bench_ablation_peer"
  "bench_ablation_peer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_peer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
