# Empty dependencies file for bench_ablation_peer.
# This may be replaced when dependencies are built.
