file(REMOVE_RECURSE
  "CMakeFiles/bench_table2.dir/bench_table2.cpp.o"
  "CMakeFiles/bench_table2.dir/bench_table2.cpp.o.d"
  "bench_table2"
  "bench_table2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
