# Empty dependencies file for bench_ablation_consolidation.
# This may be replaced when dependencies are built.
