file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_consolidation.dir/bench_ablation_consolidation.cpp.o"
  "CMakeFiles/bench_ablation_consolidation.dir/bench_ablation_consolidation.cpp.o.d"
  "bench_ablation_consolidation"
  "bench_ablation_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
