file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_intraswap.dir/bench_ablation_intraswap.cpp.o"
  "CMakeFiles/bench_ablation_intraswap.dir/bench_ablation_intraswap.cpp.o.d"
  "bench_ablation_intraswap"
  "bench_ablation_intraswap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_intraswap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
