# Empty dependencies file for bench_ablation_intraswap.
# This may be replaced when dependencies are built.
