file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6.dir/bench_fig6.cpp.o"
  "CMakeFiles/bench_fig6.dir/bench_fig6.cpp.o.d"
  "bench_fig6"
  "bench_fig6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
