file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_defer.dir/bench_ablation_defer.cpp.o"
  "CMakeFiles/bench_ablation_defer.dir/bench_ablation_defer.cpp.o.d"
  "bench_ablation_defer"
  "bench_ablation_defer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_defer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
