# Empty compiler generated dependencies file for bench_ablation_defer.
# This may be replaced when dependencies are built.
