file(REMOVE_RECURSE
  "CMakeFiles/bench_ctxlimit.dir/bench_ctxlimit.cpp.o"
  "CMakeFiles/bench_ctxlimit.dir/bench_ctxlimit.cpp.o.d"
  "bench_ctxlimit"
  "bench_ctxlimit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ctxlimit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
