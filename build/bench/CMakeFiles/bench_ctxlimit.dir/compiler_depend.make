# Empty compiler generated dependencies file for bench_ctxlimit.
# This may be replaced when dependencies are built.
