# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_vt[1]_include.cmake")
include("/root/repo/build/tests/test_wire[1]_include.cmake")
include("/root/repo/build/tests/test_allocator[1]_include.cmake")
include("/root/repo/build/tests/test_sim_gpu[1]_include.cmake")
include("/root/repo/build/tests/test_cudart[1]_include.cmake")
include("/root/repo/build/tests/test_transport[1]_include.cmake")
include("/root/repo/build/tests/test_memory_manager[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_checkpoint[1]_include.cmake")
include("/root/repo/build/tests/test_cuda4[1]_include.cmake")
include("/root/repo/build/tests/test_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_differential[1]_include.cmake")
include("/root/repo/build/tests/test_unix_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_pinning_and_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_integration_extra[1]_include.cmake")
include("/root/repo/build/tests/test_gpu_spec[1]_include.cmake")
include("/root/repo/build/tests/test_consolidation[1]_include.cmake")
include("/root/repo/build/tests/test_workloads_extended[1]_include.cmake")
