# Empty dependencies file for test_allocator.
# This may be replaced when dependencies are built.
