file(REMOVE_RECURSE
  "CMakeFiles/test_allocator.dir/test_allocator.cpp.o"
  "CMakeFiles/test_allocator.dir/test_allocator.cpp.o.d"
  "test_allocator"
  "test_allocator.pdb"
  "test_allocator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_allocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
