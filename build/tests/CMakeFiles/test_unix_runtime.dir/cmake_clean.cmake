file(REMOVE_RECURSE
  "CMakeFiles/test_unix_runtime.dir/test_unix_runtime.cpp.o"
  "CMakeFiles/test_unix_runtime.dir/test_unix_runtime.cpp.o.d"
  "test_unix_runtime"
  "test_unix_runtime.pdb"
  "test_unix_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unix_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
