
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_unix_runtime.cpp" "tests/CMakeFiles/test_unix_runtime.dir/test_unix_runtime.cpp.o" "gcc" "tests/CMakeFiles/test_unix_runtime.dir/test_unix_runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gpuvm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cudart/CMakeFiles/gpuvm_cudart.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gpuvm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/gpuvm_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gpuvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
