# Empty dependencies file for test_unix_runtime.
# This may be replaced when dependencies are built.
