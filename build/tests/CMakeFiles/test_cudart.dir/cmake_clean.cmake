file(REMOVE_RECURSE
  "CMakeFiles/test_cudart.dir/test_cudart.cpp.o"
  "CMakeFiles/test_cudart.dir/test_cudart.cpp.o.d"
  "test_cudart"
  "test_cudart.pdb"
  "test_cudart[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cudart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
