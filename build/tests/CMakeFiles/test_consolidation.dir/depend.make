# Empty dependencies file for test_consolidation.
# This may be replaced when dependencies are built.
