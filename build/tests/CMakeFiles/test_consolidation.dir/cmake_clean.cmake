file(REMOVE_RECURSE
  "CMakeFiles/test_consolidation.dir/test_consolidation.cpp.o"
  "CMakeFiles/test_consolidation.dir/test_consolidation.cpp.o.d"
  "test_consolidation"
  "test_consolidation.pdb"
  "test_consolidation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
