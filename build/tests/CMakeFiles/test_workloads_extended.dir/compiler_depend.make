# Empty compiler generated dependencies file for test_workloads_extended.
# This may be replaced when dependencies are built.
