file(REMOVE_RECURSE
  "CMakeFiles/test_workloads_extended.dir/test_workloads_extended.cpp.o"
  "CMakeFiles/test_workloads_extended.dir/test_workloads_extended.cpp.o.d"
  "test_workloads_extended"
  "test_workloads_extended.pdb"
  "test_workloads_extended[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workloads_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
