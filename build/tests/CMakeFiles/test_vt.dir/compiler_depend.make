# Empty compiler generated dependencies file for test_vt.
# This may be replaced when dependencies are built.
