file(REMOVE_RECURSE
  "CMakeFiles/test_vt.dir/test_vt.cpp.o"
  "CMakeFiles/test_vt.dir/test_vt.cpp.o.d"
  "test_vt"
  "test_vt.pdb"
  "test_vt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
