file(REMOVE_RECURSE
  "CMakeFiles/test_gpu_spec.dir/test_gpu_spec.cpp.o"
  "CMakeFiles/test_gpu_spec.dir/test_gpu_spec.cpp.o.d"
  "test_gpu_spec"
  "test_gpu_spec.pdb"
  "test_gpu_spec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpu_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
