# Empty dependencies file for test_gpu_spec.
# This may be replaced when dependencies are built.
