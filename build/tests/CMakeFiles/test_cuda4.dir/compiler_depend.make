# Empty compiler generated dependencies file for test_cuda4.
# This may be replaced when dependencies are built.
