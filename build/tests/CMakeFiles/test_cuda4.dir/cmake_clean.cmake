file(REMOVE_RECURSE
  "CMakeFiles/test_cuda4.dir/test_cuda4.cpp.o"
  "CMakeFiles/test_cuda4.dir/test_cuda4.cpp.o.d"
  "test_cuda4"
  "test_cuda4.pdb"
  "test_cuda4[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cuda4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
