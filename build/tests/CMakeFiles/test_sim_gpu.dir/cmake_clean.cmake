file(REMOVE_RECURSE
  "CMakeFiles/test_sim_gpu.dir/test_sim_gpu.cpp.o"
  "CMakeFiles/test_sim_gpu.dir/test_sim_gpu.cpp.o.d"
  "test_sim_gpu"
  "test_sim_gpu.pdb"
  "test_sim_gpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
