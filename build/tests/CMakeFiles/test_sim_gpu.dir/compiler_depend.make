# Empty compiler generated dependencies file for test_sim_gpu.
# This may be replaced when dependencies are built.
