# Empty compiler generated dependencies file for test_integration_extra.
# This may be replaced when dependencies are built.
