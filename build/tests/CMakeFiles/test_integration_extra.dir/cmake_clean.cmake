file(REMOVE_RECURSE
  "CMakeFiles/test_integration_extra.dir/test_integration_extra.cpp.o"
  "CMakeFiles/test_integration_extra.dir/test_integration_extra.cpp.o.d"
  "test_integration_extra"
  "test_integration_extra.pdb"
  "test_integration_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
