# Empty dependencies file for test_memory_manager.
# This may be replaced when dependencies are built.
