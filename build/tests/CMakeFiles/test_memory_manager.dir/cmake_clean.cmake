file(REMOVE_RECURSE
  "CMakeFiles/test_memory_manager.dir/test_memory_manager.cpp.o"
  "CMakeFiles/test_memory_manager.dir/test_memory_manager.cpp.o.d"
  "test_memory_manager"
  "test_memory_manager.pdb"
  "test_memory_manager[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memory_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
