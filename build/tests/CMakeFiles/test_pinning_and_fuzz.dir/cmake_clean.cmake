file(REMOVE_RECURSE
  "CMakeFiles/test_pinning_and_fuzz.dir/test_pinning_and_fuzz.cpp.o"
  "CMakeFiles/test_pinning_and_fuzz.dir/test_pinning_and_fuzz.cpp.o.d"
  "test_pinning_and_fuzz"
  "test_pinning_and_fuzz.pdb"
  "test_pinning_and_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pinning_and_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
