# Empty dependencies file for test_pinning_and_fuzz.
# This may be replaced when dependencies are built.
