
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/allocator.cpp" "src/sim/CMakeFiles/gpuvm_sim.dir/allocator.cpp.o" "gcc" "src/sim/CMakeFiles/gpuvm_sim.dir/allocator.cpp.o.d"
  "/root/repo/src/sim/gpu_spec.cpp" "src/sim/CMakeFiles/gpuvm_sim.dir/gpu_spec.cpp.o" "gcc" "src/sim/CMakeFiles/gpuvm_sim.dir/gpu_spec.cpp.o.d"
  "/root/repo/src/sim/kernels.cpp" "src/sim/CMakeFiles/gpuvm_sim.dir/kernels.cpp.o" "gcc" "src/sim/CMakeFiles/gpuvm_sim.dir/kernels.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/sim/CMakeFiles/gpuvm_sim.dir/machine.cpp.o" "gcc" "src/sim/CMakeFiles/gpuvm_sim.dir/machine.cpp.o.d"
  "/root/repo/src/sim/sim_gpu.cpp" "src/sim/CMakeFiles/gpuvm_sim.dir/sim_gpu.cpp.o" "gcc" "src/sim/CMakeFiles/gpuvm_sim.dir/sim_gpu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gpuvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
