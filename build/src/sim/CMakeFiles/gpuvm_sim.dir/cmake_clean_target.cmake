file(REMOVE_RECURSE
  "libgpuvm_sim.a"
)
