file(REMOVE_RECURSE
  "CMakeFiles/gpuvm_sim.dir/allocator.cpp.o"
  "CMakeFiles/gpuvm_sim.dir/allocator.cpp.o.d"
  "CMakeFiles/gpuvm_sim.dir/gpu_spec.cpp.o"
  "CMakeFiles/gpuvm_sim.dir/gpu_spec.cpp.o.d"
  "CMakeFiles/gpuvm_sim.dir/kernels.cpp.o"
  "CMakeFiles/gpuvm_sim.dir/kernels.cpp.o.d"
  "CMakeFiles/gpuvm_sim.dir/machine.cpp.o"
  "CMakeFiles/gpuvm_sim.dir/machine.cpp.o.d"
  "CMakeFiles/gpuvm_sim.dir/sim_gpu.cpp.o"
  "CMakeFiles/gpuvm_sim.dir/sim_gpu.cpp.o.d"
  "libgpuvm_sim.a"
  "libgpuvm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuvm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
