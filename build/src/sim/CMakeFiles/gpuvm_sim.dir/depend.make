# Empty dependencies file for gpuvm_sim.
# This may be replaced when dependencies are built.
