file(REMOVE_RECURSE
  "CMakeFiles/gpuvmd.dir/gpuvmd.cpp.o"
  "CMakeFiles/gpuvmd.dir/gpuvmd.cpp.o.d"
  "gpuvmd"
  "gpuvmd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuvmd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
