# Empty compiler generated dependencies file for gpuvmd.
# This may be replaced when dependencies are built.
