file(REMOVE_RECURSE
  "CMakeFiles/gpuvm_run.dir/gpuvm_run.cpp.o"
  "CMakeFiles/gpuvm_run.dir/gpuvm_run.cpp.o.d"
  "gpuvm_run"
  "gpuvm_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuvm_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
