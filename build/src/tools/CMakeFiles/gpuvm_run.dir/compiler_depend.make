# Empty compiler generated dependencies file for gpuvm_run.
# This may be replaced when dependencies are built.
