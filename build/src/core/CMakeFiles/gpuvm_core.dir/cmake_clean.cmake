file(REMOVE_RECURSE
  "CMakeFiles/gpuvm_core.dir/checkpoint.cpp.o"
  "CMakeFiles/gpuvm_core.dir/checkpoint.cpp.o.d"
  "CMakeFiles/gpuvm_core.dir/direct_api.cpp.o"
  "CMakeFiles/gpuvm_core.dir/direct_api.cpp.o.d"
  "CMakeFiles/gpuvm_core.dir/frontend.cpp.o"
  "CMakeFiles/gpuvm_core.dir/frontend.cpp.o.d"
  "CMakeFiles/gpuvm_core.dir/memory_manager.cpp.o"
  "CMakeFiles/gpuvm_core.dir/memory_manager.cpp.o.d"
  "CMakeFiles/gpuvm_core.dir/runtime.cpp.o"
  "CMakeFiles/gpuvm_core.dir/runtime.cpp.o.d"
  "CMakeFiles/gpuvm_core.dir/scheduler.cpp.o"
  "CMakeFiles/gpuvm_core.dir/scheduler.cpp.o.d"
  "libgpuvm_core.a"
  "libgpuvm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuvm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
