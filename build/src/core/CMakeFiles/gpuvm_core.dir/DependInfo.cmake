
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/checkpoint.cpp" "src/core/CMakeFiles/gpuvm_core.dir/checkpoint.cpp.o" "gcc" "src/core/CMakeFiles/gpuvm_core.dir/checkpoint.cpp.o.d"
  "/root/repo/src/core/direct_api.cpp" "src/core/CMakeFiles/gpuvm_core.dir/direct_api.cpp.o" "gcc" "src/core/CMakeFiles/gpuvm_core.dir/direct_api.cpp.o.d"
  "/root/repo/src/core/frontend.cpp" "src/core/CMakeFiles/gpuvm_core.dir/frontend.cpp.o" "gcc" "src/core/CMakeFiles/gpuvm_core.dir/frontend.cpp.o.d"
  "/root/repo/src/core/memory_manager.cpp" "src/core/CMakeFiles/gpuvm_core.dir/memory_manager.cpp.o" "gcc" "src/core/CMakeFiles/gpuvm_core.dir/memory_manager.cpp.o.d"
  "/root/repo/src/core/runtime.cpp" "src/core/CMakeFiles/gpuvm_core.dir/runtime.cpp.o" "gcc" "src/core/CMakeFiles/gpuvm_core.dir/runtime.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/gpuvm_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/gpuvm_core.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cudart/CMakeFiles/gpuvm_cudart.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/gpuvm_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gpuvm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gpuvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
