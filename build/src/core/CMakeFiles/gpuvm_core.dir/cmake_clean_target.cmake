file(REMOVE_RECURSE
  "libgpuvm_core.a"
)
