# Empty dependencies file for gpuvm_core.
# This may be replaced when dependencies are built.
