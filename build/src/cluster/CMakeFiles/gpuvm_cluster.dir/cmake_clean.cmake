file(REMOVE_RECURSE
  "CMakeFiles/gpuvm_cluster.dir/cluster.cpp.o"
  "CMakeFiles/gpuvm_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/gpuvm_cluster.dir/node.cpp.o"
  "CMakeFiles/gpuvm_cluster.dir/node.cpp.o.d"
  "CMakeFiles/gpuvm_cluster.dir/torque.cpp.o"
  "CMakeFiles/gpuvm_cluster.dir/torque.cpp.o.d"
  "libgpuvm_cluster.a"
  "libgpuvm_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuvm_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
