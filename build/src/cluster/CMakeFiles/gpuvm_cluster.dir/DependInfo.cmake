
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster.cpp" "src/cluster/CMakeFiles/gpuvm_cluster.dir/cluster.cpp.o" "gcc" "src/cluster/CMakeFiles/gpuvm_cluster.dir/cluster.cpp.o.d"
  "/root/repo/src/cluster/node.cpp" "src/cluster/CMakeFiles/gpuvm_cluster.dir/node.cpp.o" "gcc" "src/cluster/CMakeFiles/gpuvm_cluster.dir/node.cpp.o.d"
  "/root/repo/src/cluster/torque.cpp" "src/cluster/CMakeFiles/gpuvm_cluster.dir/torque.cpp.o" "gcc" "src/cluster/CMakeFiles/gpuvm_cluster.dir/torque.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gpuvm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cudart/CMakeFiles/gpuvm_cudart.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gpuvm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/gpuvm_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gpuvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
