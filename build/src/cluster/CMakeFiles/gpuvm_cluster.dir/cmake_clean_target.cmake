file(REMOVE_RECURSE
  "libgpuvm_cluster.a"
)
