# Empty dependencies file for gpuvm_cluster.
# This may be replaced when dependencies are built.
