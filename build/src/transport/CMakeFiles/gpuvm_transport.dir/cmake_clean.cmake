file(REMOVE_RECURSE
  "CMakeFiles/gpuvm_transport.dir/channel.cpp.o"
  "CMakeFiles/gpuvm_transport.dir/channel.cpp.o.d"
  "CMakeFiles/gpuvm_transport.dir/message.cpp.o"
  "CMakeFiles/gpuvm_transport.dir/message.cpp.o.d"
  "CMakeFiles/gpuvm_transport.dir/unix_socket.cpp.o"
  "CMakeFiles/gpuvm_transport.dir/unix_socket.cpp.o.d"
  "libgpuvm_transport.a"
  "libgpuvm_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuvm_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
