file(REMOVE_RECURSE
  "libgpuvm_transport.a"
)
