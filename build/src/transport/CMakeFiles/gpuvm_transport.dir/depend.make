# Empty dependencies file for gpuvm_transport.
# This may be replaced when dependencies are built.
