file(REMOVE_RECURSE
  "libgpuvm_workloads.a"
)
