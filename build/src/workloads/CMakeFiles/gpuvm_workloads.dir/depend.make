# Empty dependencies file for gpuvm_workloads.
# This may be replaced when dependencies are built.
