file(REMOVE_RECURSE
  "CMakeFiles/gpuvm_workloads.dir/apps.cpp.o"
  "CMakeFiles/gpuvm_workloads.dir/apps.cpp.o.d"
  "CMakeFiles/gpuvm_workloads.dir/apps_extended.cpp.o"
  "CMakeFiles/gpuvm_workloads.dir/apps_extended.cpp.o.d"
  "CMakeFiles/gpuvm_workloads.dir/batch.cpp.o"
  "CMakeFiles/gpuvm_workloads.dir/batch.cpp.o.d"
  "CMakeFiles/gpuvm_workloads.dir/trace.cpp.o"
  "CMakeFiles/gpuvm_workloads.dir/trace.cpp.o.d"
  "libgpuvm_workloads.a"
  "libgpuvm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuvm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
