file(REMOVE_RECURSE
  "libgpuvm_common.a"
)
