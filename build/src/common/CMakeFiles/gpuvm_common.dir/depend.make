# Empty dependencies file for gpuvm_common.
# This may be replaced when dependencies are built.
