file(REMOVE_RECURSE
  "CMakeFiles/gpuvm_common.dir/log.cpp.o"
  "CMakeFiles/gpuvm_common.dir/log.cpp.o.d"
  "CMakeFiles/gpuvm_common.dir/status.cpp.o"
  "CMakeFiles/gpuvm_common.dir/status.cpp.o.d"
  "CMakeFiles/gpuvm_common.dir/vt.cpp.o"
  "CMakeFiles/gpuvm_common.dir/vt.cpp.o.d"
  "libgpuvm_common.a"
  "libgpuvm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuvm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
