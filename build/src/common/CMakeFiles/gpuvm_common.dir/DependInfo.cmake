
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/log.cpp" "src/common/CMakeFiles/gpuvm_common.dir/log.cpp.o" "gcc" "src/common/CMakeFiles/gpuvm_common.dir/log.cpp.o.d"
  "/root/repo/src/common/status.cpp" "src/common/CMakeFiles/gpuvm_common.dir/status.cpp.o" "gcc" "src/common/CMakeFiles/gpuvm_common.dir/status.cpp.o.d"
  "/root/repo/src/common/vt.cpp" "src/common/CMakeFiles/gpuvm_common.dir/vt.cpp.o" "gcc" "src/common/CMakeFiles/gpuvm_common.dir/vt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
