file(REMOVE_RECURSE
  "libgpuvm_cudart.a"
)
