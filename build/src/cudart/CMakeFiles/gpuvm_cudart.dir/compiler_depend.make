# Empty compiler generated dependencies file for gpuvm_cudart.
# This may be replaced when dependencies are built.
