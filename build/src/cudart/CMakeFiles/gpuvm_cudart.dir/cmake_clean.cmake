file(REMOVE_RECURSE
  "CMakeFiles/gpuvm_cudart.dir/cudart.cpp.o"
  "CMakeFiles/gpuvm_cudart.dir/cudart.cpp.o.d"
  "libgpuvm_cudart.a"
  "libgpuvm_cudart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuvm_cudart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
